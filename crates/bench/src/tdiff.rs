//! Run-comparison engine (`cargo xtask tdiff <a> <b>`).
//!
//! Diffs two committed artifacts **schema-aware** instead of textually:
//! counters compare by relative delta, histograms by their quantile
//! profile ([`telemetry::quantile_from_buckets`] over the artifact's own
//! bucket edges), span trees structurally (calls, sim minutes) and by
//! wall time with a regression threshold. Three artifact kinds are
//! recognized by shape:
//!
//! | kind | detected by | examples |
//! |---|---|---|
//! | `campaign` | top-level `aggregate` | `results/campaign_report.json` |
//! | `profile` | top-level `structural` | `results/profile_report.json` |
//! | `fold` | top-level `histograms` | a serialized [`MetricFold`](telemetry::MetricFold) |
//!
//! A **finding** is any observed difference; a finding is a **regression**
//! when it crosses the thresholds below in the worsening direction (more
//! work, slower, fatter distribution tail). Diffing an artifact against
//! itself yields zero findings — `cargo xtask ci` runs exactly that
//! self-check against the committed campaign report.

use std::collections::BTreeMap;

use serde_json::Value;
use telemetry::quantile_from_buckets;

/// Relative counter/tally growth tolerated before a difference counts as
/// a regression (deterministic counters should not move at all; 1% allows
/// intentional small re-tunes to pass with a finding, not a failure).
pub const COUNTER_REL_TOLERANCE: f64 = 0.01;

/// Relative growth of a histogram quantile (p50/p90/p99), count or sum
/// tolerated before the distribution counts as regressed.
pub const QUANTILE_SHIFT_TOLERANCE: f64 = 0.10;

/// Wall-time growth ratio beyond which a span counts as regressed
/// (25% slower), with [`WALL_ABS_FLOOR_NS`] guarding tiny spans.
pub const WALL_REGRESSION_RATIO: f64 = 1.25;

/// Spans faster than this on both sides never regress — sub-millisecond
/// walls are scheduler noise.
pub const WALL_ABS_FLOOR_NS: f64 = 1_000_000.0;

/// One observed difference between the two artifacts.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What differed, as a path (`counter/pv_evals`, `hist/newton_iters/p99`,
    /// `span/shard/run_day/calls`, `wall/shard`).
    pub metric: String,
    /// The value in artifact `a` (NaN when absent).
    pub a: f64,
    /// The value in artifact `b` (NaN when absent).
    pub b: f64,
    /// `true` when the difference crosses a regression threshold in the
    /// worsening direction.
    pub regression: bool,
    /// Human-readable qualifier (threshold crossed, side missing, …).
    pub note: String,
}

/// The result of one artifact comparison.
#[derive(Debug, Default)]
pub struct TdiffReport {
    /// Detected artifact kind (`campaign`, `profile`, `fold`).
    pub kind: String,
    /// Number of individual metric comparisons performed.
    pub compared: usize,
    /// Every observed difference, in comparison order.
    pub findings: Vec<Finding>,
}

impl TdiffReport {
    /// Number of findings that crossed a regression threshold.
    pub fn regressions(&self) -> usize {
        self.findings.iter().filter(|f| f.regression).count()
    }
}

/// Detects the artifact kind from its top-level shape.
fn detect_kind(v: &Value) -> Option<&'static str> {
    if v.get("structural").is_some() {
        Some("profile")
    } else if v.get("aggregate").is_some() {
        Some("campaign")
    } else if v.get("histograms").is_some() {
        Some("fold")
    } else {
        None
    }
}

/// Diffs two parsed artifacts of the same kind.
///
/// # Errors
///
/// Unrecognized artifact shapes, or two artifacts of different kinds.
pub fn diff_artifacts(a: &Value, b: &Value) -> Result<TdiffReport, String> {
    let kind_a = detect_kind(a).ok_or_else(|| {
        "unrecognized artifact shape (expected a campaign report, profile report or metric fold)"
            .to_owned()
    })?;
    let kind_b = detect_kind(b).ok_or_else(|| "unrecognized artifact shape in `b`".to_owned())?;
    if kind_a != kind_b {
        return Err(format!("artifact kinds differ: `{kind_a}` vs `{kind_b}`"));
    }
    let mut report = TdiffReport {
        kind: kind_a.to_owned(),
        ..TdiffReport::default()
    };
    match kind_a {
        "campaign" => {
            diff_scalar_int(&mut report, "shards", a.get("shards"), b.get("shards"));
            diff_digest(&mut report, a.get("digest"), b.get("digest"));
            let empty = Value::Null;
            diff_fold(
                &mut report,
                a.get("aggregate").unwrap_or(&empty),
                b.get("aggregate").unwrap_or(&empty),
            );
        }
        "profile" => {
            diff_span_trees(
                &mut report,
                "span",
                a.get("structural").and_then(|v| v.get("spans")),
                b.get("structural").and_then(|v| v.get("spans")),
                &["calls", "sim_minutes"],
            );
            diff_wall_trees(
                &mut report,
                a.get("machine").and_then(|v| v.get("wall_spans")),
                b.get("machine").and_then(|v| v.get("wall_spans")),
            );
        }
        _ => diff_fold(&mut report, a, b),
    }
    Ok(report)
}

fn rel_delta(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (b - a) / a.abs()
    }
}

fn diff_scalar_int(report: &mut TdiffReport, name: &str, a: Option<&Value>, b: Option<&Value>) {
    report.compared += 1;
    let a = a.and_then(Value::as_f64).unwrap_or(f64::NAN);
    let b = b.and_then(Value::as_f64).unwrap_or(f64::NAN);
    #[allow(clippy::float_cmp)] // exact equality is the "no finding" case
    if a != b && !(a.is_nan() && b.is_nan()) {
        report.findings.push(Finding {
            metric: name.to_owned(),
            a,
            b,
            regression: true,
            note: "scalar mismatch".to_owned(),
        });
    }
}

fn diff_digest(report: &mut TdiffReport, a: Option<&Value>, b: Option<&Value>) {
    report.compared += 1;
    let a = a.and_then(Value::as_str).unwrap_or("");
    let b = b.and_then(Value::as_str).unwrap_or("");
    if a != b {
        report.findings.push(Finding {
            metric: "digest".to_owned(),
            a: f64::NAN,
            b: f64::NAN,
            regression: false,
            note: format!("digests differ ({a} vs {b}) — different simulated results"),
        });
    }
}

/// Indexes a `[{"name": ..., ...}]` array by its `name` field.
fn by_name(v: Option<&Value>) -> BTreeMap<String, &Value> {
    v.and_then(Value::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|item| {
                    item.get("name")
                        .and_then(Value::as_str)
                        .map(|n| (n.to_owned(), item))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compares one numeric field across the union of two name-indexed maps.
fn diff_named_field(
    report: &mut TdiffReport,
    prefix: &str,
    field: &str,
    a: &BTreeMap<String, &Value>,
    b: &BTreeMap<String, &Value>,
    tolerance: f64,
) {
    let names: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for name in names {
        report.compared += 1;
        let metric = format!("{prefix}/{name}/{field}");
        match (a.get(name), b.get(name)) {
            (Some(av), Some(bv)) => {
                let av = av.get(field).and_then(Value::as_f64).unwrap_or(f64::NAN);
                let bv = bv.get(field).and_then(Value::as_f64).unwrap_or(f64::NAN);
                #[allow(clippy::float_cmp)] // exact equality is the "no finding" case
                if av != bv && !(av.is_nan() && bv.is_nan()) {
                    let delta = rel_delta(av, bv);
                    report.findings.push(Finding {
                        metric,
                        a: av,
                        b: bv,
                        regression: delta > tolerance,
                        note: format!("{:+.2}% (tolerance {:.0}%)", delta * 100.0, tolerance * 100.0),
                    });
                }
            }
            (Some(_), None) | (None, Some(_)) => {
                let missing = if a.contains_key(name) { "b" } else { "a" };
                report.findings.push(Finding {
                    metric,
                    a: f64::NAN,
                    b: f64::NAN,
                    regression: true,
                    note: format!("metric missing from `{missing}`"),
                });
            }
            (None, None) => {}
        }
    }
}

/// Extracts `(bounds, counts)` from a serialized histogram entry.
fn hist_buckets(v: &Value) -> Option<(Vec<u64>, Vec<u64>)> {
    let list = |key: &str| -> Option<Vec<u64>> {
        v.get(key)?
            .as_array()?
            .iter()
            .map(Value::as_u64)
            .collect::<Option<Vec<u64>>>()
    };
    Some((list("bounds")?, list("counts")?))
}

/// Compares two serialized folds: counters and tallies by relative delta,
/// histograms by count/sum and by their p50/p90/p99 quantile profile.
fn diff_fold(report: &mut TdiffReport, a: &Value, b: &Value) {
    let (ca, cb) = (by_name(a.get("counters")), by_name(b.get("counters")));
    diff_named_field(report, "counter", "value", &ca, &cb, COUNTER_REL_TOLERANCE);
    let (ta, tb) = (by_name(a.get("tallies")), by_name(b.get("tallies")));
    diff_named_field(report, "tally", "n", &ta, &tb, COUNTER_REL_TOLERANCE);

    let (ha, hb) = (by_name(a.get("histograms")), by_name(b.get("histograms")));
    for field in ["count", "sum"] {
        diff_named_field(report, "hist", field, &ha, &hb, QUANTILE_SHIFT_TOLERANCE);
    }
    let names: std::collections::BTreeSet<&String> = ha.keys().chain(hb.keys()).collect();
    for name in names {
        let (Some(av), Some(bv)) = (ha.get(name), hb.get(name)) else {
            // The missing side was already reported by the field passes.
            continue;
        };
        let (Some((bounds_a, counts_a)), Some((bounds_b, counts_b))) =
            (hist_buckets(av), hist_buckets(bv))
        else {
            continue;
        };
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            report.compared += 1;
            let qa = quantile_from_buckets(&bounds_a, &counts_a, q);
            let qb = quantile_from_buckets(&bounds_b, &counts_b, q);
            if qa != qb {
                #[allow(clippy::cast_precision_loss)] // bucket edges are small
                let (fa, fb) = (
                    qa.map_or(f64::NAN, |v| v as f64),
                    qb.map_or(f64::NAN, |v| v as f64),
                );
                let delta = rel_delta(fa, fb);
                report.findings.push(Finding {
                    metric: format!("hist/{name}/{label}"),
                    a: fa,
                    b: fb,
                    regression: delta > QUANTILE_SHIFT_TOLERANCE,
                    note: format!("quantile shifted {:+.1}%", delta * 100.0),
                });
            }
        }
    }
}

/// Recursively compares two span-tree arrays on the given integer fields
/// (structural comparison — any difference is a finding, but call-shape
/// drift is not a wall-time regression).
fn diff_span_trees(
    report: &mut TdiffReport,
    prefix: &str,
    a: Option<&Value>,
    b: Option<&Value>,
    fields: &[&str],
) {
    let (ma, mb) = (by_name(a), by_name(b));
    let names: std::collections::BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
    for name in names {
        let path = format!("{prefix}/{name}");
        match (ma.get(name), mb.get(name)) {
            (Some(av), Some(bv)) => {
                for field in fields {
                    report.compared += 1;
                    let fa = av.get(field).and_then(Value::as_f64).unwrap_or(f64::NAN);
                    let fb = bv.get(field).and_then(Value::as_f64).unwrap_or(f64::NAN);
                    #[allow(clippy::float_cmp)] // exact equality is the "no finding" case
                    if fa != fb && !(fa.is_nan() && fb.is_nan()) {
                        report.findings.push(Finding {
                            metric: format!("{path}/{field}"),
                            a: fa,
                            b: fb,
                            regression: false,
                            note: "structural drift (call shape changed)".to_owned(),
                        });
                    }
                }
                diff_span_trees(report, &path, av.get("children"), bv.get("children"), fields);
            }
            (Some(_), None) | (None, Some(_)) => {
                let missing = if ma.contains_key(name) { "b" } else { "a" };
                report.findings.push(Finding {
                    metric: path,
                    a: f64::NAN,
                    b: f64::NAN,
                    regression: true,
                    note: format!("span missing from `{missing}`"),
                });
            }
            (None, None) => {}
        }
    }
}

/// Recursively compares wall-time trees with the regression threshold
/// ([`WALL_REGRESSION_RATIO`] over [`WALL_ABS_FLOOR_NS`]).
fn diff_wall_trees(report: &mut TdiffReport, a: Option<&Value>, b: Option<&Value>) {
    fn walk(report: &mut TdiffReport, prefix: &str, a: Option<&Value>, b: Option<&Value>) {
        let (ma, mb) = (by_name(a), by_name(b));
        let names: std::collections::BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
        for name in names {
            let path = format!("{prefix}/{name}");
            if let (Some(av), Some(bv)) = (ma.get(name), mb.get(name)) {
                report.compared += 1;
                let fa = av.get("wall_ns").and_then(Value::as_f64).unwrap_or(0.0);
                let fb = bv.get("wall_ns").and_then(Value::as_f64).unwrap_or(0.0);
                let slow = fb > fa * WALL_REGRESSION_RATIO && fb - fa > WALL_ABS_FLOOR_NS;
                #[allow(clippy::float_cmp)] // exact equality is the "no finding" case
                if fa != fb {
                    report.findings.push(Finding {
                        metric: path.clone(),
                        a: fa,
                        b: fb,
                        regression: slow,
                        note: format!(
                            "wall {:+.1}% (regression beyond +{:.0}% and {} ms)",
                            rel_delta(fa, fb) * 100.0,
                            (WALL_REGRESSION_RATIO - 1.0) * 100.0,
                            WALL_ABS_FLOOR_NS / 1e6,
                        ),
                    });
                }
                walk(report, &path, av.get("children"), bv.get("children"));
            }
            // Missing spans were already flagged by the structural pass.
        }
    }
    walk(report, "wall", a, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold_doc(pv_evals: u64, p99_bucket: u64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
              "histograms": [
                {{"name": "newton_iters", "bounds": [1, 2, 4, 8], "counts": [90, 5, 4, 0, 1],
                  "count": 100, "sum": 150, "max": {p99_bucket}}}
              ],
              "counters": [{{"name": "pv_evals", "value": {pv_evals}}}],
              "tallies": [{{"name": "minute", "n": 601}}]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn self_diff_is_clean() {
        let doc = fold_doc(1000, 9);
        let report = diff_artifacts(&doc, &doc).unwrap();
        assert_eq!(report.kind, "fold");
        assert!(report.compared > 0);
        assert!(report.findings.is_empty());
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn counter_growth_beyond_tolerance_regresses() {
        let a = fold_doc(1000, 9);
        let drift = diff_artifacts(&a, &fold_doc(1005, 9)).unwrap();
        assert_eq!(drift.regressions(), 0, "0.5% growth is a finding, not a regression");
        assert_eq!(drift.findings.len(), 1);
        let regress = diff_artifacts(&a, &fold_doc(1200, 9)).unwrap();
        assert_eq!(regress.regressions(), 1);
        let improve = diff_artifacts(&a, &fold_doc(800, 9)).unwrap();
        assert_eq!(improve.regressions(), 0, "shrinking counters never regress");
        assert_eq!(improve.findings.len(), 1);
    }

    #[test]
    fn quantile_shift_is_detected_from_buckets() {
        let a: Value = serde_json::from_str(
            r#"{"histograms": [{"name": "h", "bounds": [1, 2, 4, 8], "counts": [90, 9, 1, 0, 0],
                "count": 100, "sum": 120, "max": 4}], "counters": [], "tallies": []}"#,
        )
        .unwrap();
        // Same count/sum… but the tail fattened: p99 moves from 2 to 8.
        let b: Value = serde_json::from_str(
            r#"{"histograms": [{"name": "h", "bounds": [1, 2, 4, 8], "counts": [90, 8, 0, 2, 0],
                "count": 100, "sum": 120, "max": 8}], "counters": [], "tallies": []}"#,
        )
        .unwrap();
        let report = diff_artifacts(&a, &b).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.metric == "hist/h/p99" && f.regression));
    }

    #[test]
    fn missing_metric_is_a_regression() {
        let a = fold_doc(1000, 9);
        let b: Value = serde_json::from_str(
            r#"{"histograms": [], "counters": [], "tallies": [{"name": "minute", "n": 601}]}"#,
        )
        .unwrap();
        let report = diff_artifacts(&a, &b).unwrap();
        assert!(report.regressions() >= 2, "counter and histogram both vanished");
    }

    #[test]
    fn kind_mismatch_and_unknown_shapes_error() {
        let fold = fold_doc(1, 1);
        let profile: Value =
            serde_json::from_str(r#"{"structural": {"spans": []}, "machine": {"wall_spans": []}}"#)
                .unwrap();
        assert!(diff_artifacts(&fold, &profile).is_err());
        let junk: Value = serde_json::from_str(r#"{"x": 1}"#).unwrap();
        assert!(diff_artifacts(&junk, &junk).is_err());
    }

    #[test]
    fn profile_wall_regression_thresholds() {
        let mk = |wall: u64, calls: u64| -> Value {
            serde_json::from_str(&format!(
                r#"{{
                  "structural": {{"spans": [{{"name": "shard", "calls": {calls},
                     "sim_minutes": 0, "children": []}}]}},
                  "machine": {{"wall_spans": [{{"name": "shard", "wall_ns": {wall},
                     "self_ns": {wall}, "children": []}}]}}
                }}"#
            ))
            .unwrap()
        };
        let base = mk(100_000_000, 4);
        let clean = diff_artifacts(&base, &base).unwrap();
        assert_eq!(clean.findings.len(), 0);
        // +10% wall: finding, below the ratio threshold.
        let mild = diff_artifacts(&base, &mk(110_000_000, 4)).unwrap();
        assert_eq!(mild.regressions(), 0);
        assert_eq!(mild.findings.len(), 1);
        // +50% wall: regression.
        let slow = diff_artifacts(&base, &mk(150_000_000, 4)).unwrap();
        assert_eq!(slow.regressions(), 1);
        // Call-shape drift is a finding but not a wall regression.
        let drift = diff_artifacts(&base, &mk(100_000_000, 5)).unwrap();
        assert_eq!(drift.regressions(), 0);
        assert!(drift.findings.iter().any(|f| f.metric == "span/shard/calls"));
    }
}
