//! The `cargo xtask trace` report: run the golden telemetry day, replay
//! the JSONL stream, and render a per-period MPPT tracking timeline.
//!
//! The golden day is **Golden CO, January, mix HM2, MPPT&Opt, day 0** —
//! the same cell Table 7 reports — so the stream's recomputed
//! tracking-error aggregate can be cross-checked against the committed
//! `results/tab07_tracking_error.json` artifact. The recomputation uses
//! *only* the JSONL minute events (never the in-process `DayResult`),
//! proving the stream alone carries enough to reproduce the paper metric:
//! JSONL floats are shortest-round-trip encoded, so the replayed values
//! are bit-identical to the simulated ones.

use serde_json::Value;
use std::cell::RefCell;
use std::rc::Rc;

use solarcore::{schema, DaySimulation, Policy};
use solarenv::{Season, Site};
use telemetry::{JsonlSink, Telemetry};
use workloads::Mix;

/// Budget floor below which minutes do not qualify for the tracking-error
/// aggregate; mirrors the engine's `ERROR_FLOOR_W`.
const ERROR_FLOOR_W: f64 = 5.0;

/// Timeline bucket width, simulation minutes.
pub const PERIOD_MINUTES: u32 = 30;

/// Tolerance for the stream-vs-artifact tracking-error cross-check.
pub const GOLDEN_TOLERANCE: f64 = 1e-9;

/// One minute event replayed from the stream.
#[derive(Debug, Clone, Copy)]
struct MinuteSample {
    minute: u32,
    budget_w: f64,
    drawn_w: f64,
    chip_capacity_w: f64,
    solar: bool,
}

/// Aggregates of one [`PERIOD_MINUTES`]-wide timeline bucket.
#[derive(Debug, Clone, Copy)]
pub struct PeriodSummary {
    /// First minute-of-day covered by the bucket.
    pub start_minute: u32,
    /// Minutes observed in the bucket.
    pub minutes: usize,
    /// Minutes spent on solar power.
    pub solar_minutes: usize,
    /// Mean solar budget over the bucket, watts.
    pub mean_budget_w: f64,
    /// Mean power drawn over the bucket, watts.
    pub mean_drawn_w: f64,
    /// Mean relative tracking error over qualifying minutes (0 if none).
    pub mean_error: f64,
    /// Minutes that qualified for the error aggregate.
    pub qualifying: usize,
}

/// Everything `cargo xtask trace` prints and checks.
#[derive(Debug)]
pub struct TraceReport {
    /// The raw JSONL stream of the golden day.
    pub stream: String,
    /// Timeline buckets in minute order.
    pub periods: Vec<PeriodSummary>,
    /// Day-level tracking error recomputed from minute events alone.
    pub stream_tracking_error: f64,
    /// The `day_summary` event's `tracking_error` field.
    pub summary_tracking_error: f64,
    /// Tracking error reported by the in-process [`solarcore::DayResult`].
    pub result_tracking_error: f64,
}

/// Runs the golden day with a JSONL sink attached and replays the stream.
///
/// # Panics
///
/// Panics if the simulation or the stream replay fails — this is harness
/// code whose only caller is the `trace_report` binary and the test suite.
pub fn run_golden_day() -> TraceReport {
    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let result = DaySimulation::builder()
        .site(Site::golden_co())
        .season(Season::Jan)
        .day(0)
        .mix(Mix::hm2())
        .policy(Policy::MpptOpt)
        .telemetry(Telemetry::attached(sink.clone()))
        .build()
        .expect("golden day config is valid")
        .run()
        .expect("golden day runs");
    let stream = sink.borrow().buffer().to_string();
    replay(stream, result.mean_tracking_error())
}

/// Builds a [`TraceReport`] from a stream (and the in-process error for
/// cross-checking).
fn replay(stream: String, result_tracking_error: f64) -> TraceReport {
    let mut samples = Vec::new();
    let mut summary_tracking_error = f64::NAN;
    for line in stream.lines() {
        let v: Value = serde_json::from_str(line).expect("stream line is valid JSON");
        let name = v["name"].as_str().unwrap_or_default();
        let is_event = v["t"].as_str() == Some("event");
        if is_event && name == schema::EVENT_MINUTE {
            let fields = &v["fields"];
            samples.push(MinuteSample {
                minute: u32::try_from(v["minute"].as_u64().expect("minute stamp"))
                    .expect("minute fits u32"),
                budget_w: fields[schema::BUDGET_W].as_f64().expect("budget_w"),
                drawn_w: fields[schema::DRAWN_W].as_f64().expect("drawn_w"),
                chip_capacity_w: fields[schema::CHIP_CAPACITY_W]
                    .as_f64()
                    .expect("chip_capacity_w"),
                solar: fields[schema::SOURCE].as_str() == Some("solar"),
            });
        } else if is_event && name == schema::EVENT_DAY_SUMMARY {
            summary_tracking_error = v["fields"][schema::TRACKING_ERROR]
                .as_f64()
                .expect("tracking_error");
        }
    }

    TraceReport {
        periods: periods(&samples),
        stream_tracking_error: tracking_error(&samples),
        summary_tracking_error,
        result_tracking_error,
        stream,
    }
}

/// The engine's tracking-error aggregate, recomputed from replayed minute
/// events with the same expression order as
/// [`solarcore::DayResult::mean_tracking_error`].
fn tracking_error(samples: &[MinuteSample]) -> f64 {
    let errors: Vec<f64> = samples
        .iter()
        .filter(|s| s.solar && s.budget_w > ERROR_FLOOR_W)
        .map(|s| {
            let achievable = s.budget_w.min(s.chip_capacity_w).max(ERROR_FLOOR_W);
            (achievable - s.drawn_w).abs() / achievable
        })
        .collect();
    solarcore::metrics::mean(&errors)
}

fn periods(samples: &[MinuteSample]) -> Vec<PeriodSummary> {
    let mut out: Vec<PeriodSummary> = Vec::new();
    for s in samples {
        let start = s.minute / PERIOD_MINUTES * PERIOD_MINUTES;
        if out.last().map(|p| p.start_minute) != Some(start) {
            out.push(PeriodSummary {
                start_minute: start,
                minutes: 0,
                solar_minutes: 0,
                mean_budget_w: 0.0,
                mean_drawn_w: 0.0,
                mean_error: 0.0,
                qualifying: 0,
            });
        }
        let p = out.last_mut().expect("just pushed");
        // Accumulate sums first; normalized to means below.
        p.minutes += 1;
        p.solar_minutes += usize::from(s.solar);
        p.mean_budget_w += s.budget_w;
        p.mean_drawn_w += s.drawn_w;
        if s.solar && s.budget_w > ERROR_FLOOR_W {
            let achievable = s.budget_w.min(s.chip_capacity_w).max(ERROR_FLOOR_W);
            p.mean_error += (achievable - s.drawn_w).abs() / achievable;
            p.qualifying += 1;
        }
    }
    for p in &mut out {
        let n = p.minutes as f64;
        p.mean_budget_w /= n;
        p.mean_drawn_w /= n;
        if p.qualifying > 0 {
            p.mean_error /= p.qualifying as f64;
        }
    }
    out
}

/// A period is anomalous when its tracking error is far off the day's
/// aggregate: > 3x the day mean and above an absolute floor of 5 %.
pub fn is_anomalous(period: &PeriodSummary, day_error: f64) -> bool {
    period.qualifying > 0 && period.mean_error > (3.0 * day_error).max(0.05)
}

/// Renders the human-readable timeline.
pub fn render(report: &TraceReport) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "golden telemetry day: Golden CO / Jan / HM2 / MPPT&Opt / day 0"
    );
    let _ = writeln!(
        out,
        "stream: {} records, {} minute events",
        report.stream.lines().count(),
        report.periods.iter().map(|p| p.minutes).sum::<usize>(),
    );
    let _ = writeln!(
        out,
        "\n  period       budget_w   drawn_w   track_err  timeline"
    );
    for p in &report.periods {
        let (h, m) = (p.start_minute / 60, p.start_minute % 60);
        let bar_len = (p.mean_error * 100.0).round().clamp(0.0, 40.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let bar = "#".repeat(bar_len as usize);
        let flag = if is_anomalous(p, report.stream_tracking_error) {
            "  << ANOMALY"
        } else if p.solar_minutes == 0 {
            "  (utility)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {h:02}:{m:02}       {:>8.2}  {:>8.2}   {:>8.4}  {bar}{flag}",
            p.mean_budget_w, p.mean_drawn_w, p.mean_error,
        );
    }
    let _ = writeln!(
        out,
        "\n  tracking error: stream replay {:.12}  day_summary {:.12}",
        report.stream_tracking_error, report.summary_tracking_error,
    );
    out
}

/// Reads the `(CO, Jan, HM2)` cell of the committed Table 7 artifact.
///
/// # Panics
///
/// Panics if the artifact is missing or malformed (harness code).
pub fn golden_tab07_cell(json: &str) -> f64 {
    let v: Value = serde_json::from_str(json).expect("tab07 artifact parses");
    let mixes = v["mixes"].as_array().expect("mixes array");
    let idx = mixes
        .iter()
        .position(|m| m.as_str() == Some("HM2"))
        .expect("HM2 in the mix list");
    let rows = v["rows"].as_array().expect("rows array");
    let row = rows
        .iter()
        .find(|r| r[0].as_str() == Some("CO") && r[1].as_str() == Some("Jan"))
        .expect("CO/Jan row");
    row[2][idx].as_f64().expect("tracking-error cell")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_day_stream_reproduces_the_day_result_error() {
        let report = run_golden_day();
        // The stream alone must reproduce the engine's aggregate exactly:
        // replayed floats are bit-identical and the fold order matches.
        assert_eq!(
            report.stream_tracking_error.to_bits(),
            report.result_tracking_error.to_bits(),
            "stream replay diverged from DayResult::mean_tracking_error"
        );
        assert_eq!(
            report.summary_tracking_error.to_bits(),
            report.result_tracking_error.to_bits(),
        );
        assert!(!report.periods.is_empty());
        let rendered = render(&report);
        assert!(rendered.contains("tracking error"));
    }

    #[test]
    fn tab07_cell_lookup_reads_the_hm2_column() {
        let json = r#"{
            "mixes": ["H1", "HM2"],
            "rows": [["AZ", "Jan", [0.5, 0.6]], ["CO", "Jan", [0.1, 0.2]]]
        }"#;
        assert_eq!(golden_tab07_cell(json), 0.2);
    }

    #[test]
    fn anomaly_flags_trip_on_large_period_errors() {
        let p = PeriodSummary {
            start_minute: 450,
            minutes: 30,
            solar_minutes: 30,
            mean_budget_w: 100.0,
            mean_drawn_w: 50.0,
            mean_error: 0.5,
            qualifying: 30,
        };
        assert!(is_anomalous(&p, 0.1));
        assert!(!is_anomalous(&p, 0.4));
    }
}
