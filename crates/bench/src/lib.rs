//! Experiment harness for the SolarCore reproduction.
//!
//! One experiment module per table/figure of the paper's evaluation
//! (Section 6), each with a `run(...)` entry point that computes the
//! table/series, prints it in the paper's layout, and returns a
//! serde-serializable result that the `expt_*` binaries write to
//! `results/*.json`.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Figure 1 (fixed-load utilization) | [`experiments::fig01`] | `expt_fig01_fixed_load` |
//! | Figure 6 (I-V/P-V vs irradiance) | [`experiments::fig06`] | `expt_fig06_iv_irradiance` |
//! | Figure 7 (I-V/P-V vs temperature) | [`experiments::fig07`] | `expt_fig07_iv_temperature` |
//! | Table 2 (site potentials) | [`experiments::tab02`] | `expt_tab02_sites` |
//! | Table 3 (battery tiers) | [`experiments::tab03`] | `expt_tab03_battery` |
//! | Figures 13/14 (tracking traces) | [`experiments::fig13`] | `expt_fig13_tracking`, `expt_fig14_tracking` |
//! | Table 7 (tracking error) | [`experiments::tab07`] | `expt_tab07_tracking_error` |
//! | Figure 15 (duration vs threshold) | [`experiments::fig15`] | `expt_fig15_duration_threshold` |
//! | Figures 16/17 (fixed-budget energy/PTP) | [`experiments::fig16`] | `expt_fig16_17_fixed_budget` |
//! | Figure 18 (energy utilization) | [`experiments::fig18`] | `expt_fig18_energy_util` |
//! | Figure 19 (effective duration) | [`experiments::fig19`] | `expt_fig19_effective_duration` |
//! | Figure 20 (utilization vs duration) | [`experiments::fig20`] | `expt_fig20_util_vs_duration` |
//! | Figure 21 (normalized PTP) | [`experiments::fig21`] | `expt_fig21_ptp_policies` |
//! | Headline claims | [`experiments::headline`] | `expt_headline` |
//! | Telemetry golden day | [`trace_report`] | `trace_report` (`cargo xtask trace`) |
//!
//! `expt_all` regenerates everything (sharing the policy-grid sweep).
//!
//! # Quick start
//!
//! The sweeps all start from a [`grid::GridConfig`]; `quick()` is the
//! reduced grid the tests and the determinism harness run:
//!
//! ```
//! use bench::grid::GridConfig;
//!
//! let quick = GridConfig::quick();
//! let full = GridConfig::default();
//! assert!(quick.sites.len() < full.sites.len());
//! assert_eq!(full.days, 1);
//! ```

#![cfg_attr(test, allow(clippy::float_cmp))] // unit tests assert exact constructed values
pub mod campaign;
pub mod chaos;
pub mod determinism;
pub mod experiments;
pub mod grid;
pub mod output;
pub mod parallel;
pub mod profile;
pub mod tdiff;
pub mod trace_report;

pub use grid::{DaySummary, GridConfig, PolicyGrid};
pub use output::{write_json, TextTable};
