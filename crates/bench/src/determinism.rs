//! Bitwise-reproducibility helpers: canonical hashing of simulation
//! output and a seeded shuffle for input-order perturbation.
//!
//! The SolarCore evaluation is only trustworthy if a day simulation is
//! *bit-identical* regardless of thread count and work ordering. These
//! helpers give that property teeth: every quantity is folded into an
//! FNV-1a hash via `f64::to_bits` (so `-0.0` vs `0.0` or a ULP of drift
//! changes the hash), and `cargo xtask determinism` compares the hashes
//! across 1-thread, N-thread, and shuffled-input runs.

use solarcore::engine::DayResult;

use crate::grid::PolicyGrid;

/// Canonical FNV-1a accumulator over simulation quantities.
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for CanonicalHasher {
    fn default() -> Self {
        Self { state: FNV_OFFSET }
    }
}

impl CanonicalHasher {
    /// Folds raw bytes into the state.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds an `f64` by exact bit pattern — no rounding, no tolerance.
    pub fn f64(&mut self, value: f64) -> &mut Self {
        self.bytes(&value.to_bits().to_le_bytes())
    }

    /// Folds a `u64`.
    pub fn u64(&mut self, value: u64) -> &mut Self {
        self.bytes(&value.to_le_bytes())
    }

    /// Folds a string (length-prefixed so concatenations cannot collide).
    pub fn str(&mut self, value: &str) -> &mut Self {
        self.u64(value.len() as u64);
        self.bytes(value.as_bytes())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Canonical hash of one day simulation: every per-minute record's budget,
/// drawn power, bus voltage, chip power/capacity, instructions (PTP), and
/// per-core V/F digest, in minute order.
pub fn day_hash(result: &DayResult) -> u64 {
    let mut h = CanonicalHasher::default();
    for r in result.records() {
        h.u64(u64::from(r.minute));
        h.f64(r.budget.get());
        h.f64(r.drawn.get());
        h.f64(r.bus_voltage.get());
        h.f64(r.chip_power.get());
        h.f64(r.chip_capacity.get());
        h.f64(r.instructions);
        h.u64(r.vf_digest);
    }
    h.f64(result.energy_drawn().get());
    h.f64(result.solar_instructions());
    h.finish()
}

/// Canonical hash of a computed policy grid: every summary and battery
/// baseline, field by field, in the grid's canonical order.
pub fn grid_hash(grid: &PolicyGrid) -> u64 {
    let mut h = CanonicalHasher::default();
    h.u64(grid.summaries.len() as u64);
    for s in &grid.summaries {
        h.str(&s.site);
        h.str(&s.season);
        h.str(&s.mix);
        h.str(&s.policy);
        h.u64(u64::from(s.day));
        h.f64(s.utilization);
        h.f64(s.effective_fraction);
        h.f64(s.ptp);
        h.f64(s.tracking_error);
        h.f64(s.energy_drawn_wh);
        h.f64(s.energy_available_wh);
    }
    h.u64(grid.battery.len() as u64);
    for b in &grid.battery {
        h.str(&b.site);
        h.str(&b.season);
        h.str(&b.mix);
        h.u64(u64::from(b.day));
        h.f64(b.upper_ptp);
        h.f64(b.lower_ptp);
    }
    h.finish()
}

/// splitmix64 — the seed expander used for the shuffle below.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates shuffle from an explicit seed: same seed,
/// same permutation, on every platform.
// The modulo bounds the draw by `i < items.len()`, so the cast back to
// usize cannot truncate.
#[allow(clippy::cast_possible_truncation)]
pub fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        // Modulo bias is irrelevant here: the permutation only needs to be
        // deterministic and "not the identity", not statistically uniform.
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_sensitive_to_bit_flips() {
        let a = CanonicalHasher::default().f64(1.0).finish();
        let b = CanonicalHasher::default().f64(1.0 + f64::EPSILON).finish();
        let c = CanonicalHasher::default().f64(-0.0).finish();
        let d = CanonicalHasher::default().f64(0.0).finish();
        assert_ne!(a, b);
        assert_ne!(c, d);
    }

    #[test]
    fn string_hashing_is_length_prefixed() {
        let a = CanonicalHasher::default().str("ab").str("c").finish();
        let b = CanonicalHasher::default().str("a").str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_deterministic_and_permutes() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        shuffle(&mut a, 0xfeed);
        shuffle(&mut b, 0xfeed);
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<u32>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        shuffle(&mut a, 1);
        shuffle(&mut b, 2);
        assert_ne!(a, b);
    }
}
