//! Differential chaos campaign: every fault scenario under `scenarios/`
//! is run against a clean twin of the same day, and the report records how
//! much performance-time product (PTP) the hardened controller retained,
//! how fast the fault was detected, and whether anything false-tripped.
//!
//! The campaign sweeps `scenario × site × policy`. A scenario's `site`
//! hint pins it to that site (the monsoon cliff is an Arizona story);
//! unhinted scenarios run at every campaign site. Each cell runs the day
//! twice — once disarmed (clean) and once with the plan armed and a
//! telemetry sink attached — and derives its metrics from the
//! [`DayResult`] pair plus the `fault_*`/`degrade_*` event stream.
//!
//! `cargo xtask chaos` drives the `chaos_check` binary over this module;
//! the full campaign writes `results/chaos_report.json` (canonical row
//! order, digest included), which `bench/tests/chaos_golden.rs` pins.

use std::cell::RefCell;
use std::error::Error;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use faults::{parse_scenario, FaultPlan};
use serde::Serialize;
use serde_json::Value;
use solarcore::engine::DayResult;
use solarcore::telemetry::schema;
use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use telemetry::{JsonlSink, Profiler, Stopwatch, Telemetry};
use workloads::Mix;

use crate::campaign::WaveProgress;
use crate::determinism::CanonicalHasher;

/// The policies the campaign exercises (the two MPPT allocators the paper
/// headlines; `Fixed-Power` has no sensing loop to harden).
pub const CAMPAIGN_POLICIES: [Policy; 2] = [Policy::MpptOpt, Policy::MpptRr];

/// The site codes the campaign sweeps when a scenario carries no hint:
/// the paper's best (Phoenix AZ) and worst (Oak Ridge TN) solar sites.
pub const CAMPAIGN_SITES: [&str; 2] = ["AZ", "TN"];

/// One loaded scenario file.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// File name the plan came from (campaign rows sort by it).
    pub file: String,
    /// The parsed, validated fault plan.
    pub plan: FaultPlan,
}

/// One `scenario × site × policy` campaign cell.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosCell {
    /// Scenario name (from the plan, not the file name).
    pub scenario: String,
    /// Site code the cell ran at.
    pub site: String,
    /// Season of the simulated day.
    pub season: String,
    /// Policy label.
    pub policy: String,
    /// Solar-powered instructions of the clean (disarmed) run.
    pub ptp_clean: f64,
    /// Solar-powered instructions of the chaos (armed) run.
    pub ptp_chaos: f64,
    /// `ptp_chaos / ptp_clean` (`1.0` when the clean day has no PTP).
    pub ptp_retention: f64,
    /// Minutes from the plan's first fault onset to the first detection
    /// event at/after onset (`null` when nothing was detected or the plan
    /// schedules no faults).
    pub detection_latency_minutes: Option<u64>,
    /// Times the controller tripped into the degraded fallback mode.
    pub degrade_enters: u64,
    /// `fault_reject` events over the day.
    pub fault_rejects: u64,
    /// Degradation trips before the first fault onset (every trip, for a
    /// plan with no scheduled faults) — must be zero on a sound detector.
    pub false_trips: u64,
}

/// The campaign report serialized to `results/chaos_report.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// One row per campaign cell, in canonical (file, site, policy) order.
    pub rows: Vec<ChaosCell>,
    /// Canonical FNV-1a digest over every row, hex-encoded — pins the
    /// committed artifact byte-for-byte against regeneration drift.
    pub digest: String,
}

/// The repo's `scenarios/` directory (relative to this crate).
pub fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Loads and parses every `*.toml` scenario under `dir`, sorted by file
/// name so the campaign order is stable across filesystems.
///
/// # Errors
///
/// Propagates I/O errors and scenario parse/validation errors (annotated
/// with the offending file name).
pub fn load_scenarios(dir: &Path) -> Result<Vec<ChaosScenario>, Box<dyn Error>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    let mut scenarios = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let plan = parse_scenario(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        scenarios.push(ChaosScenario { file, plan });
    }
    Ok(scenarios)
}

/// Maps a campaign site code to its [`Site`].
fn site_from_code(code: &str) -> Result<Site, Box<dyn Error>> {
    match code {
        "AZ" => Ok(Site::phoenix_az()),
        "CO" => Ok(Site::golden_co()),
        "NC" => Ok(Site::elizabeth_city_nc()),
        "TN" => Ok(Site::oak_ridge_tn()),
        other => Err(format!("unknown site code `{other}`").into()),
    }
}

/// Maps a scenario season hint to a [`Season`] (default July — the
/// paper's stress season for Phoenix).
fn season_from_hint(hint: Option<&str>) -> Result<Season, Box<dyn Error>> {
    match hint.unwrap_or("Jul") {
        "Jan" => Ok(Season::Jan),
        "Apr" => Ok(Season::Apr),
        "Jul" => Ok(Season::Jul),
        "Oct" => Ok(Season::Oct),
        other => Err(format!("unknown season hint `{other}`").into()),
    }
}

/// Detection events extracted from one chaos run's JSONL stream.
#[derive(Debug, Default, Clone, Copy)]
struct DetectionTrace {
    first_detection_at: Option<u64>,
    degrade_enters: u64,
    fault_rejects: u64,
    false_trips: u64,
}

/// Scans the telemetry stream for `fault_reject` / `degrade_enter`
/// events. `onset` is the plan's first scheduled fault minute.
fn scan_stream(stream: &str, onset: Option<u32>) -> Result<DetectionTrace, Box<dyn Error>> {
    let mut trace = DetectionTrace::default();
    for line in stream.lines() {
        let record: Value = serde_json::from_str(line)?;
        let name = record["name"].as_str().unwrap_or_default();
        if name != "fault_reject" && name != "degrade_enter" {
            continue;
        }
        let minute = record["minute"].as_u64().unwrap_or(0);
        if name == "fault_reject" {
            trace.fault_rejects += 1;
        } else {
            trace.degrade_enters += 1;
        }
        match onset {
            Some(onset) => {
                let onset = u64::from(onset);
                if minute >= onset && trace.first_detection_at.is_none() {
                    trace.first_detection_at = Some(minute);
                }
                if name == "degrade_enter" && minute < onset {
                    trace.false_trips += 1;
                }
            }
            // No scheduled fault: every trip is a false trip and there is
            // no onset to measure latency from.
            None => {
                if name == "degrade_enter" {
                    trace.false_trips += 1;
                }
            }
        }
    }
    Ok(trace)
}

/// Runs one campaign cell: a clean day and its armed twin, plus the
/// telemetry-derived detection metrics.
///
/// # Errors
///
/// Propagates configuration, simulation and stream-parse errors.
pub fn run_cell(
    scenario: &ChaosScenario,
    site_code: &str,
    policy: Policy,
) -> Result<ChaosCell, Box<dyn Error>> {
    run_cell_profiled(scenario, site_code, policy, &Profiler::disabled())
}

/// [`run_cell`] under a caller-owned [`Profiler`]: the whole cell (clean
/// twin + armed run) nests inside one [`schema::PROF_CHAOS_CELL`] span and
/// both simulations carry the profiler through their engine seams. The
/// profiler is wall-clock only — cell metrics and the campaign digest are
/// bit-identical with profiling armed (`determinism_check` §7).
///
/// # Errors
///
/// Same failure modes as [`run_cell`].
pub fn run_cell_profiled(
    scenario: &ChaosScenario,
    site_code: &str,
    policy: Policy,
    prof: &Profiler,
) -> Result<ChaosCell, Box<dyn Error>> {
    let _cell_span = prof.scope(schema::PROF_CHAOS_CELL);
    let site = site_from_code(site_code)?;
    let season = season_from_hint(scenario.plan.season_hint())?;
    let day = scenario.plan.day_hint().unwrap_or(0);
    let builder = || {
        DaySimulation::builder()
            .site(site.clone())
            .season(season)
            .day(day)
            .mix(Mix::hm2())
            .policy(policy)
            .profiler(prof.clone())
    };

    let clean: DayResult = builder().build()?.run()?;

    let sink = Rc::new(RefCell::new(JsonlSink::new()));
    let chaos: DayResult = builder()
        .fault_plan(scenario.plan.clone())
        .telemetry(Telemetry::attached(sink.clone()))
        .build()?
        .run()?;
    let stream = sink.borrow().buffer().to_string();

    let onset = scenario.plan.first_onset();
    let trace = scan_stream(&stream, onset)?;
    let ptp_clean = clean.solar_instructions();
    let ptp_chaos = chaos.solar_instructions();
    let ptp_retention = if ptp_clean > 0.0 {
        ptp_chaos / ptp_clean
    } else {
        1.0
    };
    let detection_latency_minutes = match (onset, trace.first_detection_at) {
        (Some(onset), Some(at)) => Some(at.saturating_sub(u64::from(onset))),
        _ => None,
    };
    Ok(ChaosCell {
        scenario: scenario.plan.name().to_owned(),
        site: site_code.to_owned(),
        season: season.to_string(),
        policy: policy.label().to_owned(),
        ptp_clean,
        ptp_chaos,
        ptp_retention,
        detection_latency_minutes,
        degrade_enters: trace.degrade_enters,
        fault_rejects: trace.fault_rejects,
        false_trips: trace.false_trips,
    })
}

/// The sites one scenario runs at: its `site` hint when present, the
/// full campaign sweep otherwise.
pub fn sites_for(scenario: &ChaosScenario) -> Vec<&str> {
    match scenario.plan.site_hint() {
        Some(hint) => vec![hint],
        None => CAMPAIGN_SITES.to_vec(),
    }
}

/// Runs the full campaign over `scenarios` and assembles the report with
/// its canonical digest.
///
/// # Errors
///
/// Propagates the first cell failure.
pub fn run_campaign(scenarios: &[ChaosScenario]) -> Result<ChaosReport, Box<dyn Error>> {
    run_campaign_profiled(scenarios, &Profiler::disabled(), None)
}

/// [`run_campaign`] under a caller-owned [`Profiler`], with optional
/// per-cell progress reporting (a chaos "wave" is one cell, so
/// [`WaveProgress::executed`] always equals [`WaveProgress::done`]).
///
/// # Errors
///
/// Propagates the first cell failure.
pub fn run_campaign_profiled(
    scenarios: &[ChaosScenario],
    prof: &Profiler,
    progress: Option<fn(&WaveProgress)>,
) -> Result<ChaosReport, Box<dyn Error>> {
    let total: usize = scenarios
        .iter()
        .map(|s| sites_for(s).len() * CAMPAIGN_POLICIES.len())
        .sum();
    let watch = Stopwatch::new();
    let mut rows = Vec::new();
    for scenario in scenarios {
        for site in sites_for(scenario) {
            for policy in CAMPAIGN_POLICIES {
                rows.push(run_cell_profiled(scenario, site, policy, prof)?);
                if let Some(report) = progress {
                    let done = rows.len();
                    let elapsed_secs = watch.elapsed_secs();
                    #[allow(clippy::cast_precision_loss)] // cell counts are tiny
                    let eta_secs = (done > 0)
                        .then(|| elapsed_secs / done as f64 * (total - done) as f64);
                    report(&WaveProgress {
                        done,
                        total,
                        executed: done,
                        elapsed_secs,
                        eta_secs,
                    });
                }
            }
        }
    }
    let digest = format!("{:016x}", report_digest(&rows));
    Ok(ChaosReport { rows, digest })
}

/// Canonical FNV-1a digest over every report row, field by field.
pub fn report_digest(rows: &[ChaosCell]) -> u64 {
    let mut h = CanonicalHasher::default();
    h.u64(rows.len() as u64);
    for row in rows {
        h.str(&row.scenario);
        h.str(&row.site);
        h.str(&row.season);
        h.str(&row.policy);
        h.f64(row.ptp_clean);
        h.f64(row.ptp_chaos);
        h.f64(row.ptp_retention);
        h.u64(row.detection_latency_minutes.map_or(u64::MAX, |m| m));
        h.u64(row.degrade_enters);
        h.u64(row.fault_rejects);
        h.u64(row.false_trips);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_load_sorted_and_valid() {
        let scenarios = load_scenarios(&scenarios_dir()).unwrap();
        assert!(scenarios.len() >= 5, "campaign needs breadth");
        let files: Vec<&str> = scenarios.iter().map(|s| s.file.as_str()).collect();
        let mut sorted = files.clone();
        sorted.sort_unstable();
        assert_eq!(files, sorted);
        assert!(
            scenarios.iter().any(|s| s.plan.is_empty()),
            "control scenario present"
        );
        assert!(scenarios.iter().any(|s| s.plan.has_sensor_faults()));
        assert!(scenarios.iter().any(|s| s.plan.has_irradiance_faults()));
        assert!(scenarios.iter().any(|s| s.plan.has_core_faults()));
    }

    #[test]
    fn site_hints_pin_the_sweep() {
        let scenarios = load_scenarios(&scenarios_dir()).unwrap();
        let monsoon = scenarios
            .iter()
            .find(|s| s.plan.name() == "monsoon_cliff")
            .unwrap();
        assert_eq!(sites_for(monsoon), vec!["AZ"]);
        let control = scenarios
            .iter()
            .find(|s| s.plan.name() == "clean_control")
            .unwrap();
        assert_eq!(sites_for(control), CAMPAIGN_SITES.to_vec());
    }

    #[test]
    fn stream_scan_classifies_events() {
        let stream = concat!(
            "{\"t\":\"event\",\"name\":\"minute\",\"minute\":500,\"seq\":0,\"fields\":{}}\n",
            "{\"t\":\"event\",\"name\":\"degrade_enter\",\"minute\":600,\"seq\":1,\"fields\":{}}\n",
            "{\"t\":\"event\",\"name\":\"fault_reject\",\"minute\":700,\"seq\":2,\"fields\":{}}\n",
            "{\"t\":\"event\",\"name\":\"degrade_enter\",\"minute\":710,\"seq\":3,\"fields\":{}}\n",
        );
        let t = scan_stream(stream, Some(650)).unwrap();
        assert_eq!(t.fault_rejects, 1);
        assert_eq!(t.degrade_enters, 2);
        assert_eq!(t.false_trips, 1, "the minute-600 trip precedes onset");
        assert_eq!(t.first_detection_at, Some(700));
        let no_onset = scan_stream(stream, None).unwrap();
        assert_eq!(no_onset.false_trips, 2);
        assert_eq!(no_onset.first_detection_at, None);
    }

    #[test]
    fn unknown_codes_are_rejected() {
        assert!(site_from_code("XX").is_err());
        assert!(season_from_hint(Some("Mar")).is_err());
        assert!(season_from_hint(None).is_ok());
    }
}
