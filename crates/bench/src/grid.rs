//! The shared policy-sweep grid: every `(site, season, mix, policy, day)`
//! day simulation, plus the battery baselines — the raw material for
//! Table 7 and Figures 18–21 and the headline claims.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

use serde::Serialize;

use pv::PvArray;
use solarcore::engine::phase_seed;
use solarcore::{BatterySystem, DaySimulation, Policy};
use solarenv::{Season, Site};
use telemetry::{JsonlSink, Telemetry};
use workloads::Mix;

use crate::parallel::{default_threads, parallel_map};

/// The three MPPT load-scheduling policies the grid sweeps.
pub const GRID_POLICIES: [Policy; 3] = [Policy::MpptIc, Policy::MpptRr, Policy::MpptOpt];

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Sites to sweep (defaults to all four).
    pub sites: Vec<Site>,
    /// Seasons to sweep (defaults to all four).
    pub seasons: Vec<Season>,
    /// Mixes to sweep (defaults to all ten).
    pub mixes: Vec<Mix>,
    /// Weather realizations per (site, season).
    pub days: u32,
    /// Worker threads.
    pub threads: usize,
    /// When set, every sweep cell writes its telemetry stream — one JSONL
    /// file per `(site, season, mix, day)`, shared by the cell's three
    /// policy runs in run order — into this directory.
    pub telemetry_dir: Option<PathBuf>,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            sites: Site::all(),
            seasons: Season::ALL.to_vec(),
            mixes: Mix::all(),
            days: 1,
            threads: default_threads(),
            telemetry_dir: None,
        }
    }
}

impl GridConfig {
    /// A reduced grid for quick runs and tests: two sites (AZ, TN), two
    /// seasons (Jan, Jul), three mixes (H1, HM2, L1), one day.
    pub fn quick() -> Self {
        Self {
            sites: vec![Site::phoenix_az(), Site::oak_ridge_tn()],
            seasons: vec![Season::Jan, Season::Jul],
            mixes: vec![Mix::h1(), Mix::hm2(), Mix::l1()],
            days: 1,
            threads: default_threads(),
            telemetry_dir: None,
        }
    }
}

/// Aggregates of one `(site, season, mix, policy, day)` simulation.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct DaySummary {
    /// Site code (`"AZ"` …).
    pub site: String,
    /// Season label (`"Jan"` …).
    pub season: String,
    /// Mix name (`"H1"` …).
    pub mix: String,
    /// Policy label (`"MPPT&Opt"` …).
    pub policy: String,
    /// Weather-realization index.
    pub day: u32,
    /// Green-energy utilization (drawn / available).
    pub utilization: f64,
    /// Fraction of the daytime window spent solar-powered.
    pub effective_fraction: f64,
    /// Performance-time product: instructions committed on solar power.
    pub ptp: f64,
    /// Mean relative tracking error.
    pub tracking_error: f64,
    /// Solar energy drawn, Wh.
    pub energy_drawn_wh: f64,
    /// Ideal MPP energy available, Wh.
    pub energy_available_wh: f64,
}

/// Battery baselines for one `(site, season, mix, day)`.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct BatterySummary {
    /// Site code.
    pub site: String,
    /// Season label.
    pub season: String,
    /// Mix name.
    pub mix: String,
    /// Weather-realization index.
    pub day: u32,
    /// Battery-U (92 % derating) instructions.
    pub upper_ptp: f64,
    /// Battery-L (81 % derating) instructions.
    pub lower_ptp: f64,
}

/// The computed sweep.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyGrid {
    /// One summary per MPPT policy run.
    pub summaries: Vec<DaySummary>,
    /// One battery baseline pair per (site, season, mix, day).
    pub battery: Vec<BatterySummary>,
}

/// One `(site, season, mix, day)` sweep cell.
type GridCell = (Site, Season, Mix, u32);

impl PolicyGrid {
    /// Runs the sweep (parallel across day simulations).
    pub fn compute(config: &GridConfig) -> Self {
        Self::from_cells(
            Self::cells(config),
            config.threads,
            config.telemetry_dir.as_deref(),
        )
    }

    /// Runs the sweep with the cell order permuted by a seeded shuffle.
    ///
    /// Because the cell assembly emits canonically sorted output,
    /// the result must be bit-identical to [`PolicyGrid::compute`] — the
    /// determinism harness verifies exactly that.
    pub fn compute_shuffled(config: &GridConfig, seed: u64) -> Self {
        let mut cells = Self::cells(config);
        crate::determinism::shuffle(&mut cells, seed);
        Self::from_cells(cells, config.threads, config.telemetry_dir.as_deref())
    }

    /// Enumerates the sweep cells in configuration order.
    fn cells(config: &GridConfig) -> Vec<GridCell> {
        let mut cells = Vec::new();
        for site in &config.sites {
            for &season in &config.seasons {
                for mix in &config.mixes {
                    for day in 0..config.days {
                        cells.push((site.clone(), season, mix.clone(), day));
                    }
                }
            }
        }
        cells
    }

    /// Simulates the given cells in parallel and assembles the grid in
    /// canonical order (sorted by site, season, mix, day, policy), so the
    /// serialized output is byte-stable regardless of thread scheduling
    /// and input order.
    fn from_cells(
        cells: Vec<GridCell>,
        threads: usize,
        telemetry_dir: Option<&std::path::Path>,
    ) -> Self {
        if let Some(dir) = telemetry_dir {
            std::fs::create_dir_all(dir).expect("telemetry directory is creatable");
        }
        let results = parallel_map(cells, threads, |(site, season, mix, day)| {
            let array = PvArray::solarcore_default();
            let seed = phase_seed(site, *season, *day);

            // One JSONL stream per cell, shared by the batch's policies.
            // The sink is created inside the worker (it is thread-local by
            // construction); distinct cells write distinct files, so the
            // output set is identical regardless of thread count.
            let sink = telemetry_dir.map(|_| Rc::new(RefCell::new(JsonlSink::new())));
            let telemetry = sink
                .as_ref()
                .map_or_else(Telemetry::disabled, |s| Telemetry::attached(s.clone()));

            // One batch per cell: the weather trace is synthesized once and
            // the PV solver memo is shared, so the second and third policy
            // hit the per-minute MPP solves the first one warmed.
            let batch = DaySimulation::builder()
                .site(site.clone())
                .season(*season)
                .day(*day)
                .mix(mix.clone())
                .telemetry(telemetry)
                .build_batch(&GRID_POLICIES)
                .expect("valid config");
            let results = batch.run_all().expect("day runs");

            if let (Some(dir), Some(sink)) = (telemetry_dir, sink) {
                let name = format!("{}_{}_{}_day{}.jsonl", site.code(), season, mix.name(), day);
                std::fs::write(dir.join(name), sink.borrow().buffer())
                    .expect("telemetry stream is writable");
            }

            let summaries: Vec<DaySummary> = results
                .iter()
                .map(|result| DaySummary {
                    site: site.code().to_string(),
                    season: season.to_string(),
                    mix: mix.name().to_string(),
                    policy: result.policy().label().to_string(),
                    day: *day,
                    utilization: result.utilization(),
                    effective_fraction: result.effective_fraction(),
                    ptp: result.solar_instructions(),
                    tracking_error: result.mean_tracking_error(),
                    energy_drawn_wh: result.energy_drawn().get(),
                    energy_available_wh: result.energy_available().get(),
                })
                .collect();

            let trace = batch.setup().trace();
            let upper = BatterySystem::upper_bound()
                .simulate_day(&array, trace, mix, seed)
                .expect("battery day runs");
            let lower = BatterySystem::lower_bound()
                .simulate_day(&array, trace, mix, seed)
                .expect("battery day runs");
            let battery = BatterySummary {
                site: site.code().to_string(),
                season: season.to_string(),
                mix: mix.name().to_string(),
                day: *day,
                upper_ptp: upper.instructions,
                lower_ptp: lower.instructions,
            };
            (summaries, battery)
        });

        let mut summaries = Vec::new();
        let mut battery = Vec::new();
        for (s, b) in results {
            summaries.extend(s);
            battery.push(b);
        }
        // Canonical emission order: results arrive in cell order, which a
        // shuffled run permutes — sorting makes the output independent of
        // both input order and thread count.
        summaries.sort_by(|a, b| {
            (&a.site, &a.season, &a.mix, a.day, &a.policy)
                .cmp(&(&b.site, &b.season, &b.mix, b.day, &b.policy))
        });
        battery.sort_by(|a, b| {
            (&a.site, &a.season, &a.mix, a.day).cmp(&(&b.site, &b.season, &b.mix, b.day))
        });
        PolicyGrid { summaries, battery }
    }

    /// Summaries for one policy label.
    pub fn for_policy(&self, policy: Policy) -> impl Iterator<Item = &DaySummary> {
        let label = policy.label();
        self.summaries.iter().filter(move |s| s.policy == label)
    }

    /// The battery baseline matching a summary's (site, season, mix, day).
    pub fn battery_for(&self, s: &DaySummary) -> Option<&BatterySummary> {
        self.battery
            .iter()
            .find(|b| b.site == s.site && b.season == s.season && b.mix == s.mix && b.day == s.day)
    }

    /// Mean PTP of a policy normalized to the Battery-L baseline, averaged
    /// over every grid cell (the Figure 21 headline aggregation).
    pub fn mean_normalized_ptp(&self, policy: Policy) -> f64 {
        let values: Vec<f64> = self
            .for_policy(policy)
            .filter_map(|s| {
                self.battery_for(s)
                    .filter(|b| b.lower_ptp > 0.0)
                    .map(|b| s.ptp / b.lower_ptp)
            })
            .collect();
        solarcore::metrics::mean(&values)
    }

    /// Mean Battery-U PTP normalized to Battery-L.
    pub fn mean_normalized_battery_upper(&self) -> f64 {
        let values: Vec<f64> = self
            .battery
            .iter()
            .filter(|b| b.lower_ptp > 0.0)
            .map(|b| b.upper_ptp / b.lower_ptp)
            .collect();
        solarcore::metrics::mean(&values)
    }

    /// Mean utilization of a policy across the grid.
    pub fn mean_utilization(&self, policy: Policy) -> f64 {
        let values: Vec<f64> = self.for_policy(policy).map(|s| s.utilization).collect();
        solarcore::metrics::mean(&values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> PolicyGrid {
        PolicyGrid::compute(&GridConfig {
            sites: vec![Site::phoenix_az()],
            seasons: vec![Season::Jan],
            mixes: vec![Mix::hm2()],
            days: 1,
            threads: 2,
            telemetry_dir: None,
        })
    }

    #[test]
    fn grid_has_one_summary_per_policy_cell() {
        let grid = tiny_grid();
        assert_eq!(grid.summaries.len(), 3);
        assert_eq!(grid.battery.len(), 1);
        let labels: Vec<&str> = grid.summaries.iter().map(|s| s.policy.as_str()).collect();
        assert!(labels.contains(&"MPPT&Opt"));
        assert!(labels.contains(&"MPPT&RR"));
        assert!(labels.contains(&"MPPT&IC"));
    }

    #[test]
    fn normalized_ptp_ordering_holds_on_tiny_grid() {
        let grid = tiny_grid();
        let opt = grid.mean_normalized_ptp(Policy::MpptOpt);
        let ic = grid.mean_normalized_ptp(Policy::MpptIc);
        assert!(opt >= ic, "opt {opt:.3} vs ic {ic:.3}");
        assert!(opt > 0.5 && opt < 2.0);
        let bu = grid.mean_normalized_battery_upper();
        assert!((bu - 0.92 / 0.81).abs() < 0.05, "battery-U/L {bu:.3}");
    }

    #[test]
    fn telemetry_dir_writes_one_stream_per_cell() {
        let dir = std::env::temp_dir().join("solarcore_grid_telemetry_test");
        let _ = std::fs::remove_dir_all(&dir);
        let grid = PolicyGrid::compute(&GridConfig {
            sites: vec![Site::phoenix_az()],
            seasons: vec![Season::Jan],
            mixes: vec![Mix::hm2()],
            days: 1,
            threads: 2,
            telemetry_dir: Some(dir.clone()),
        });
        assert_eq!(grid.summaries.len(), 3);
        let stream = std::fs::read_to_string(dir.join("AZ_Jan_HM2_day0.jsonl")).unwrap();
        // The cell's three policy runs share one stream in run order.
        assert_eq!(stream.matches("\"day_start\"").count(), 3);
        assert_eq!(stream.matches("\"day_summary\"").count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn battery_lookup_matches_cells() {
        let grid = tiny_grid();
        for s in &grid.summaries {
            assert!(grid.battery_for(s).is_some());
        }
    }
}
