//! Property-based tests of the PV electrical models.

use proptest::prelude::*;

use pv::units::{Amps, Celsius, Irradiance, Volts};
use pv::{CellEnv, Datasheet, PvModule};

/// A plausible crystalline-silicon module datasheet.
fn arb_datasheet() -> impl Strategy<Value = Datasheet> {
    // Isc 3–9 A; Voc per cell 0.55–0.68 V; fill-factor shaped Vmp/Imp.
    (
        3.0..9.0_f64,
        36u32..=96,
        0.58..0.68_f64,
        0.72..0.82_f64,
        0.88..0.95_f64,
    )
        .prop_map(|(isc, cells, voc_per_cell, vmp_frac, imp_frac)| Datasheet {
            name: "prop".to_owned(),
            isc: Amps::new(isc),
            voc: Volts::new(voc_per_cell * cells as f64),
            vmp: Volts::new(voc_per_cell * cells as f64 * vmp_frac),
            imp: Amps::new(isc * imp_frac),
            cells_series: cells,
            isc_temp_coeff: 0.00065 * isc,
        })
}

fn arb_env() -> impl Strategy<Value = CellEnv> {
    (50.0..1200.0_f64, -20.0..80.0_f64)
        .prop_map(|(g, t)| CellEnv::new(Irradiance::new(g), Celsius::new(t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Datasheet fitting reproduces the cardinal points it was given, for
    /// any plausible module.
    #[test]
    fn fit_reproduces_any_plausible_datasheet(ds in arb_datasheet()) {
        let module = match ds.fit() {
            Ok(m) => m,
            // A few extreme fill factors are legitimately unfittable with a
            // single-diode + Rs model; rejecting them is correct behaviour.
            Err(_) => return Ok(()),
        };
        let env = CellEnv::stc();
        let mpp = module.mpp(env);
        prop_assert!((mpp.voltage.get() - ds.vmp.get()).abs() / ds.vmp.get() < 0.05);
        prop_assert!((mpp.current.get() - ds.imp.get()).abs() / ds.imp.get() < 0.05);
        prop_assert!((module.open_circuit_voltage(env).get() - ds.voc.get()).abs() / ds.voc.get() < 0.02);
        prop_assert!((module.short_circuit_current(env).get() - ds.isc.get()).abs() / ds.isc.get() < 0.03);
    }

    /// `voltage_at` and `current_at` are mutual inverses on the operating
    /// branch for any environment.
    #[test]
    fn voltage_current_roundtrip(env in arb_env(), frac in 0.05..0.95_f64) {
        let module = PvModule::bp3180n();
        let isc = module.short_circuit_current(env);
        prop_assume!(isc.get() > 0.05);
        let i = Amps::new(isc.get() * frac);
        let v = module.voltage_at(env, i).unwrap();
        let i_back = module.current_at(env, v).unwrap();
        prop_assert!((i_back.get() - i.get()).abs() < 1e-6, "{} vs {}", i_back, i);
    }

    /// Physical monotonicities: more light ⇒ more short-circuit current and
    /// more maximum power; more heat ⇒ less open-circuit voltage.
    #[test]
    fn environmental_monotonicity(g in 100.0..1000.0_f64, t in -10.0..60.0_f64) {
        let module = PvModule::bp3180n();
        let base = CellEnv::new(Irradiance::new(g), Celsius::new(t));
        let brighter = CellEnv::new(Irradiance::new(g + 100.0), Celsius::new(t));
        let hotter = CellEnv::new(Irradiance::new(g), Celsius::new(t + 15.0));
        prop_assert!(module.short_circuit_current(brighter) > module.short_circuit_current(base));
        prop_assert!(module.mpp(brighter).power > module.mpp(base).power);
        prop_assert!(module.open_circuit_voltage(hotter) < module.open_circuit_voltage(base));
    }

    /// The MPP fill factor stays in the physically meaningful band.
    #[test]
    fn fill_factor_is_physical(env in arb_env()) {
        let module = PvModule::bp3180n();
        let voc = module.open_circuit_voltage(env);
        prop_assume!(voc.get() > 1.0);
        let isc = module.short_circuit_current(env);
        let mpp = module.mpp(env);
        let ff = mpp.power.get() / (voc.get() * isc.get());
        prop_assert!((0.5..0.9).contains(&ff), "fill factor {ff:.3}");
    }
}
