//! Differential properties proving the fast solver paths are *bitwise*
//! transparent: for any `(G, T, V)` sequence — including exact repeats,
//! which hit the memo — a [`CachedArray`] and a hoisted [`ModuleSolver`]
//! return `f64`s whose `to_bits()` match the cold reference solver
//! exactly. Approximate equality is not good enough here: the downstream
//! determinism harness hashes raw bit patterns, so a single-ULP wobble
//! from caching would break reproducibility.

use proptest::prelude::*;

use pv::units::{Celsius, Irradiance, Volts};
use pv::{ArrayCache, CachedArray, CellEnv, PvArray, PvGenerator, PvModule};

fn arb_env() -> impl Strategy<Value = CellEnv> {
    (0.0..1100.0_f64, -10.0..80.0_f64)
        .prop_map(|(g, t)| CellEnv::new(Irradiance::new(g), Celsius::new(t)))
}

/// `to_bits` comparison of two solver outcomes, mapping errors to a
/// sentinel so mismatched error paths also fail the property.
fn current_bits(result: Result<pv::units::Amps, pv::PvError>) -> u64 {
    match result {
        Ok(amps) => amps.get().to_bits(),
        Err(_) => u64::MAX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A memoized array is bit-identical to the plain array over a random
    /// probe sequence replayed twice — the second pass is ~all cache hits,
    /// so this exercises both the miss path (store) and the hit path
    /// (replay) against the cold reference.
    #[test]
    fn cached_array_is_bit_identical(
        env in arb_env(),
        env2 in arb_env(),
        frac in 0.0..1.2_f64,
    ) {
        let array = PvArray::solarcore_default();
        let cache = ArrayCache::new();
        let cached = CachedArray::new(&array, &cache);

        for pass in 0..2 {
            for e in [env, env2] {
                let voc_cold = array.open_circuit_voltage(e);
                let voc_fast = cached.open_circuit_voltage(e);
                prop_assert_eq!(
                    voc_cold.get().to_bits(), voc_fast.get().to_bits(),
                    "voc bits diverged on pass {}", pass
                );

                let v = Volts::new(voc_cold.get() * frac);
                prop_assert_eq!(
                    current_bits(array.current_at(e, v)),
                    current_bits(cached.current_at(e, v)),
                    "current bits diverged on pass {} at {:?}", pass, v
                );

                let mpp_cold = array.mpp(e);
                let mpp_fast = cached.mpp(e);
                prop_assert_eq!(mpp_cold.voltage.get().to_bits(), mpp_fast.voltage.get().to_bits());
                prop_assert_eq!(mpp_cold.current.get().to_bits(), mpp_fast.current.get().to_bits());
                prop_assert_eq!(mpp_cold.power.get().to_bits(), mpp_fast.power.get().to_bits());
            }
        }
        let stats = cache.stats();
        prop_assert!(stats.hits > 0, "second pass should hit the memo");
    }

    /// The hoisted per-environment solver ([`PvModule::solver`]) matches
    /// the unhoisted module entry points bit for bit across a voltage
    /// sweep: coefficient hoisting must not change evaluation order.
    #[test]
    fn module_solver_matches_module(env in arb_env(), steps in 3u32..24) {
        let module = PvModule::bp3180n();
        let solver = module.solver(env);
        prop_assert_eq!(
            module.open_circuit_voltage(env).get().to_bits(),
            solver.open_circuit_voltage().get().to_bits()
        );
        let voc = module.open_circuit_voltage(env).get();
        for k in 0..=steps {
            let v = Volts::new(voc * k as f64 / steps as f64);
            prop_assert_eq!(
                current_bits(module.current_at(env, v)),
                current_bits(solver.current_at(v)),
                "solver diverged at {:?}", v
            );
        }
        let mpp_cold = module.mpp(env);
        let mpp_warm = pv::mpp::find_mpp_with(&solver);
        prop_assert_eq!(mpp_cold.voltage.get().to_bits(), mpp_warm.voltage.get().to_bits());
        prop_assert_eq!(mpp_cold.power.get().to_bits(), mpp_warm.power.get().to_bits());
    }

    /// Non-finite probe voltages take the uncached error path and still
    /// agree with the reference solver's error.
    #[test]
    fn cached_array_matches_on_error_paths(env in arb_env()) {
        let array = PvArray::solarcore_default();
        let cache = ArrayCache::new();
        let cached = CachedArray::new(&array, &cache);
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let v = Volts::new(v);
            prop_assert_eq!(
                current_bits(array.current_at(env, v)),
                current_bits(cached.current_at(env, v))
            );
        }
    }
}

/// Long mixed workload: interleaved fresh keys and repeats, forcing
/// set-associative evictions (more than `WAYS` distinct keys per set),
/// then re-probing everything cold vs. cached.
#[test]
fn eviction_churn_stays_bit_identical() {
    let array = PvArray::solarcore_default();
    let cache = ArrayCache::new();
    let cached = CachedArray::new(&array, &cache);

    // Deterministic pseudo-random probe stream (LCG; no ambient RNG).
    let mut state: u64 = 0x5eed_cafe_f00d_0001;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut probes = Vec::new();
    for _ in 0..4000 {
        let env = CellEnv::new(
            Irradiance::new(100.0 + 900.0 * next()),
            Celsius::new(-5.0 + 70.0 * next()),
        );
        probes.push((env, Volts::new(40.0 * next())));
    }
    // Replay a slice of early probes at the end so some keys repeat after
    // heavy churn has evicted and re-filled their sets.
    let replay: Vec<_> = probes.iter().take(64).copied().collect();
    probes.extend(replay);

    for (env, v) in &probes {
        let cold = array.current_at(*env, *v).map(|i| i.get().to_bits());
        let fast = cached.current_at(*env, *v).map(|i| i.get().to_bits());
        assert_eq!(cold.ok(), fast.ok(), "bit divergence at {env:?} {v:?}");
    }
    let stats = cache.stats();
    assert!(stats.misses > 0 && stats.hits > 0);
}
