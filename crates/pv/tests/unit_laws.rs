//! Property-based laws for the `pv::units` newtype arithmetic.
//!
//! The unit layer is the workspace's first invariant layer (see
//! `DESIGN.md`): dimensional mistakes must not type-check. These tests pin
//! the algebra the rest of the workspace leans on — the cross-unit products
//! agree with the underlying `f64` arithmetic, commute where physics says
//! they commute, and the `Sum`/`ZERO` identities hold exactly.

use proptest::prelude::*;

use pv::units::{Amps, Joules, Ohms, Seconds, Volts, Watts};

/// Finite, sign-free magnitudes spanning the simulation's working range,
/// biased so sub-unity values (cell-level currents, second-scale steps)
/// appear as often as large ones.
fn mag() -> impl Strategy<Value = f64> {
    (0.0..1e4_f64, 0u8..2).prop_map(|(x, pick)| if pick == 0 { x } else { x * 1e-4 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `V · I = P`: the electrical power product matches raw arithmetic
    /// and commutes (`Volts × Amps == Amps × Volts`, bit-exact in IEEE).
    #[test]
    fn volt_amp_product_is_watts(v in mag(), i in mag()) {
        let p: Watts = Volts::new(v) * Amps::new(i);
        prop_assert_eq!(p.get().to_bits(), (v * i).to_bits());
        let q: Watts = Amps::new(i) * Volts::new(v);
        prop_assert_eq!(p.get().to_bits(), q.get().to_bits());
    }

    /// `P · t = E`: energy integrates power over time, commutatively.
    #[test]
    fn watt_second_product_is_joules(p in mag(), t in mag()) {
        let e: Joules = Watts::new(p) * Seconds::new(t);
        prop_assert_eq!(e.get().to_bits(), (p * t).to_bits());
        let f: Joules = Seconds::new(t) * Watts::new(p);
        prop_assert_eq!(e.get().to_bits(), f.get().to_bits());
        // And the division inverts it within floating-point roundoff.
        prop_assume!(t > 0.0);
        let back: Watts = e / Seconds::new(t);
        prop_assert!((back.get() - p).abs() <= p.abs() * 1e-12);
    }

    /// Ohm's law closes: `I · R = V`, `V / R = I`, `V / I = R`-free forms
    /// agree with raw arithmetic.
    #[test]
    fn ohms_law_products_agree(i in mag(), r in mag()) {
        let v: Volts = Amps::new(i) * Ohms::new(r);
        prop_assert_eq!(v.get().to_bits(), (i * r).to_bits());
        prop_assume!(r > 1e-9);
        let back: Amps = v / Ohms::new(r);
        prop_assert!((back.get() - i).abs() <= i.abs() * 1e-12);
    }

    /// Same-unit addition is commutative and `ZERO` is its identity.
    #[test]
    fn addition_commutes_with_zero_identity(a in mag(), b in mag()) {
        let x = Watts::new(a);
        let y = Watts::new(b);
        prop_assert_eq!((x + y).get().to_bits(), (y + x).get().to_bits());
        prop_assert_eq!((x + Watts::ZERO).get().to_bits(), x.get().to_bits());
        // Subtraction is addition of the negation.
        prop_assert_eq!((x - y).get().to_bits(), (x + (-y)).get().to_bits());
    }

    /// Scalar scaling commutes (`c · x == x · c`) and distributes over
    /// addition within roundoff.
    #[test]
    fn scalar_scaling_commutes(c in -1e3..1e3_f64, a in mag(), b in mag()) {
        let x = Watts::new(a);
        let y = Watts::new(b);
        prop_assert_eq!((x * c).get().to_bits(), (c * x).get().to_bits());
        let lhs = ((x + y) * c).get();
        let rhs = (x * c + y * c).get();
        prop_assert!((lhs - rhs).abs() <= lhs.abs().max(1.0) * 1e-12);
    }

    /// `Sum` over an iterator equals the sequential fold, and the empty
    /// sum is `ZERO`.
    #[test]
    fn sum_matches_sequential_fold(values in proptest::collection::vec(mag(), 0..16)) {
        // `+ 0.0` normalizes the signed zero `f64::sum` seeds with (-0.0).
        let units: Vec<Watts> = values.iter().copied().map(Watts::new).collect();
        let summed: Watts = units.iter().copied().sum();
        let folded = units.iter().copied().fold(Watts::ZERO, |acc, w| acc + w);
        prop_assert_eq!((summed.get() + 0.0).to_bits(), (folded.get() + 0.0).to_bits());
        let empty: Watts = std::iter::empty::<Watts>().sum();
        prop_assert_eq!((empty.get() + 0.0).to_bits(), 0.0_f64.to_bits());
    }
}
