//! Physical constants and standard test conditions used by the PV models.

use crate::units::{Celsius, Irradiance, Volts};

/// Elementary charge `q` in coulombs.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant `k` in joules per kelvin.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Silicon band-gap energy in electron-volts, used for the temperature
/// scaling of the diode reverse-saturation current.
pub const SILICON_BANDGAP_EV: f64 = 1.12;

/// Standard test condition irradiance: 1000 W/m² (1 sun).
pub const STC_IRRADIANCE: Irradiance = Irradiance::new(1000.0);

/// Standard test condition cell temperature: 25 °C.
pub const STC_TEMPERATURE: Celsius = Celsius::new(25.0);

/// Thermal voltage `kT/q` at the given temperature.
///
/// At 25 °C this is ≈ 25.7 mV.
#[inline]
pub fn thermal_voltage(temperature: Celsius) -> Volts {
    Volts::new(BOLTZMANN * temperature.to_kelvin() / ELEMENTARY_CHARGE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_stc() {
        let vt = thermal_voltage(STC_TEMPERATURE);
        assert!((vt.get() - 0.02569).abs() < 1e-4, "vt = {vt}");
    }

    #[test]
    fn thermal_voltage_grows_with_temperature() {
        assert!(thermal_voltage(Celsius::new(75.0)) > thermal_voltage(Celsius::new(0.0)));
    }
}
