//! Error types for the `pv` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by PV model construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PvError {
    /// A model parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be > 0"`.
        constraint: &'static str,
    },
    /// The numerical solver failed to converge.
    NoConvergence {
        /// What was being solved, e.g. `"module current at voltage"`.
        context: &'static str,
        /// Iterations performed before giving up.
        iterations: u32,
    },
    /// Datasheet fitting could not reproduce the requested operating points.
    FitFailed {
        /// Residual error of the best candidate found.
        residual: f64,
    },
}

impl fmt::Display for PvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PvError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            PvError::NoConvergence {
                context,
                iterations,
            } => write!(
                f,
                "solver did not converge ({context}, {iterations} iterations)"
            ),
            PvError::FitFailed { residual } => {
                write!(f, "datasheet fit failed (best residual {residual:.3e})")
            }
        }
    }
}

impl Error for PvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = PvError::InvalidParameter {
            name: "series_resistance",
            value: -1.0,
            constraint: "must be >= 0",
        };
        let msg = e.to_string();
        assert!(msg.starts_with("invalid parameter"));
        assert!(!msg.ends_with('.'));

        let e = PvError::NoConvergence {
            context: "mpp search",
            iterations: 200,
        };
        assert!(e.to_string().contains("200"));

        let e = PvError::FitFailed { residual: 0.5 };
        assert!(e.to_string().contains("fit failed"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PvError>();
    }
}
