//! The [`PvGenerator`] abstraction: anything with a photovoltaic I-V
//! characteristic (a module, an array, a mock in tests).

use crate::cell::CellEnv;
use crate::error::PvError;
use crate::mpp::MppPoint;
use crate::units::{Amps, Volts, Watts};

/// A photovoltaic source with an I-V characteristic parameterized by the
/// environment.
///
/// The trait is object-safe so power-delivery code can hold a
/// `Box<dyn PvGenerator>`.
pub trait PvGenerator {
    /// Open-circuit voltage under `env` (zero in darkness).
    fn open_circuit_voltage(&self, env: CellEnv) -> Volts;

    /// Output current at terminal voltage `voltage`.
    ///
    /// # Errors
    ///
    /// Implementations return an error for non-finite voltages or solver
    /// failure.
    fn current_at(&self, env: CellEnv, voltage: Volts) -> Result<Amps, PvError>;

    /// The true maximum power point under `env` (the oracle the tracking
    /// efficiency is measured against).
    fn mpp(&self, env: CellEnv) -> MppPoint;

    /// [`Self::current_at`] plus the number of inner solver iterations the
    /// evaluation cost — the telemetry subsystem's per-solve cost signal.
    ///
    /// The default reports zero iterations (correct for closed-form or
    /// mocked sources); iterative implementations override it with the
    /// true Newton/bisection count. Overrides must return bit-identical
    /// currents to [`Self::current_at`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::current_at`].
    fn current_at_counted(&self, env: CellEnv, voltage: Volts) -> Result<(Amps, u32), PvError> {
        Ok((self.current_at(env, voltage)?, 0))
    }

    /// Output power at terminal voltage `voltage`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::current_at`] errors.
    fn power_at(&self, env: CellEnv, voltage: Volts) -> Result<Watts, PvError> {
        Ok(voltage * self.current_at(env, voltage)?)
    }
}

impl PvGenerator for crate::module::PvModule {
    fn open_circuit_voltage(&self, env: CellEnv) -> Volts {
        crate::module::PvModule::open_circuit_voltage(self, env)
    }

    fn current_at(&self, env: CellEnv, voltage: Volts) -> Result<Amps, PvError> {
        crate::module::PvModule::current_at(self, env, voltage)
    }

    fn mpp(&self, env: CellEnv) -> MppPoint {
        crate::module::PvModule::mpp(self, env)
    }

    fn current_at_counted(&self, env: CellEnv, voltage: Volts) -> Result<(Amps, u32), PvError> {
        self.solver(env).current_at_counted(voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::PvModule;

    #[test]
    fn trait_is_object_safe_and_usable() {
        let boxed: Box<dyn PvGenerator> = Box::new(PvModule::bp3180n());
        let env = CellEnv::stc();
        let voc = boxed.open_circuit_voltage(env);
        assert!(voc.get() > 40.0);
        let p = boxed.power_at(env, Volts::new(36.0)).unwrap();
        assert!(p.get() > 150.0);
        assert!(boxed.mpp(env).power.get() > 170.0);
    }
}
