//! Photovoltaic (PV) electrical models for the SolarCore reproduction.
//!
//! This crate implements the single-diode equivalent-circuit model of a
//! photovoltaic cell described in Section 2 of the SolarCore paper (HPCA
//! 2011), together with series/parallel composition into modules and arrays,
//! a robust current–voltage solver, and maximum-power-point (MPP) search.
//!
//! The paper builds its PV power model with SPICE equivalent-circuit
//! simulations of the BP3180N 180 W polycrystalline module; this crate is a
//! native-Rust replacement solving the same governing equation:
//!
//! ```text
//! I = Iph(G, T) − I0(T) · (exp(q · (Vcell + I·Rs) / (n·k·T)) − 1)
//! ```
//!
//! where `Iph` is the photocurrent (proportional to irradiance `G` with a
//! linear temperature coefficient), `I0` the diode reverse-saturation
//! current, `Rs` the lumped series resistance, and `n` the diode ideality
//! factor. Shunt (parallel) resistance is neglected, exactly as in the paper
//! ("Our model only considers the series resistance since the impact of
//! shunt resistance is negligible").
//!
//! # Quick start
//!
//! ```
//! use pv::{PvModule, CellEnv, units::{Irradiance, Celsius}};
//!
//! let module = PvModule::bp3180n();
//! let env = CellEnv::new(Irradiance::new(1000.0), Celsius::new(25.0));
//! let mpp = module.mpp(env);
//! assert!((mpp.power.get() - 180.0).abs() < 6.0); // ~180 W at STC
//! ```
//!
//! ## Panic policy
//!
//! Non-test code in this crate must not panic on recoverable conditions:
//! `unwrap`/`expect`/`panic!` are denied by the gate below and by
//! `cargo xtask lint`; justified sites carry an explicit allow + waiver.
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![cfg_attr(test, allow(clippy::float_cmp))] // unit tests assert exact constructed values

pub mod array;
pub mod cell;
pub mod constants;
pub mod curve;
pub mod datasheet;
pub mod error;
pub mod generator;
pub mod module;
pub mod mpp;
pub mod solve;
pub mod units;

pub use array::PvArray;
pub use cell::{CellCoeffs, CellEnv, CellParams};
pub use curve::{resistive_operating_point, IvCurve, IvPoint};
pub use datasheet::Datasheet;
pub use error::PvError;
pub use generator::PvGenerator;
pub use module::PvModule;
pub use mpp::MppPoint;
pub use solve::{ArrayCache, CacheStats, CachedArray, ModuleSolver};
