//! PV module: series/parallel composition of identical cells, with robust
//! terminal I-V solving (Section 3 of the paper).
//!
//! A module is `Ns` cells in series forming a string, and `Np` identical
//! strings in parallel. Under uniform irradiance and temperature the module
//! equation reduces to the cell equation with `v_cell = V / Ns` and
//! `i_cell = I / Np`.

use crate::cell::{CellEnv, CellParams};
use crate::datasheet::Datasheet;
use crate::error::PvError;
use crate::mpp::{self, MppPoint};
use crate::solve::ModuleSolver;
use crate::units::{Amps, Volts, Watts};

/// A photovoltaic module (or, with `strings_parallel > 1`, a small array of
/// identical series strings) under uniform conditions.
///
/// # Examples
///
/// ```
/// use pv::{PvModule, CellEnv};
/// use pv::units::Volts;
///
/// let module = PvModule::bp3180n();
/// let env = CellEnv::stc();
/// let i = module.current_at(env, Volts::new(36.0))?;
/// assert!(i.get() > 4.5 && i.get() < 5.5);
/// # Ok::<(), pv::PvError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PvModule {
    name: String,
    cell: CellParams,
    cells_series: u32,
    strings_parallel: u32,
}

impl PvModule {
    /// Builds a module from cell parameters and a series/parallel layout.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] if either count is zero.
    pub fn new(
        name: impl Into<String>,
        cell: CellParams,
        cells_series: u32,
        strings_parallel: u32,
    ) -> Result<Self, PvError> {
        if cells_series == 0 {
            return Err(PvError::InvalidParameter {
                name: "cells_series",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        if strings_parallel == 0 {
            return Err(PvError::InvalidParameter {
                name: "strings_parallel",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        Ok(Self {
            name: name.into(),
            cell,
            cells_series,
            strings_parallel,
        })
    }

    /// The BP3180N 180 W polycrystalline module studied in the paper:
    /// 72 series cells, `Pmax = 180 W`, `Vmp = 36.1 V`, `Imp = 4.98 A`,
    /// `Voc = 44.8 V`, `Isc = 5.4 A`. Parameters are extracted from the
    /// datasheet via [`Datasheet::fit`].
    #[allow(clippy::expect_used)]
    pub fn bp3180n() -> Self {
        Datasheet::bp3180n()
            .fit()
            // lint:allow(panic): compile-time-constant datasheet, pinned by a unit test
            .expect("BP3180N datasheet parameters are known-good")
    }

    /// Human-readable module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying cell model.
    pub fn cell(&self) -> &CellParams {
        &self.cell
    }

    /// Number of series-connected cells per string.
    pub fn cells_series(&self) -> u32 {
        self.cells_series
    }

    /// Number of parallel strings.
    pub fn strings_parallel(&self) -> u32 {
        self.strings_parallel
    }

    /// Open-circuit voltage `Voc` under the given environment (closed form,
    /// since no current flows through the series resistance).
    ///
    /// Returns zero volts in darkness.
    pub fn open_circuit_voltage(&self, env: CellEnv) -> Volts {
        self.solver(env).open_circuit_voltage()
    }

    /// Resolves a per-environment [`ModuleSolver`]: the `(G, T)`-dependent
    /// coefficients are computed once and shared by every solve made
    /// through the returned handle. Results are bitwise identical to the
    /// corresponding [`PvModule`] methods, which all delegate here.
    pub fn solver(&self, env: CellEnv) -> ModuleSolver<'_> {
        ModuleSolver::new(self, env)
    }

    /// Short-circuit current `Isc` under the given environment.
    #[allow(clippy::expect_used)]
    pub fn short_circuit_current(&self, env: CellEnv) -> Amps {
        self.current_at(env, Volts::ZERO)
            // lint:allow(panic): V=0 root is bracketed by construction (residual invariant test)
            .expect("short-circuit solve is always bracketed")
    }

    /// Terminal voltage at a prescribed per-module current (closed form):
    /// `V = Ns·(n·Vt·ln((Iph − i)/I0 + 1) − i·Rs)` with `i = I / Np`.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] if the requested current exceeds
    /// the photocurrent (the module cannot source it at positive voltage).
    pub fn voltage_at(&self, env: CellEnv, current: Amps) -> Result<Volts, PvError> {
        let i_cell = current.get() / self.strings_parallel as f64;
        let iph = self.cell.photocurrent(env).get();
        let i0 = self.cell.saturation_current(env.temperature).get();
        if i_cell >= iph {
            return Err(PvError::InvalidParameter {
                name: "current",
                value: current.get(),
                constraint: "must be below the photocurrent",
            });
        }
        let nvt = self.cell.n_vt(env.temperature);
        let v_cell =
            nvt * ((iph - i_cell) / i0 + 1.0).ln() - i_cell * self.cell.series_resistance.get();
        Ok(Volts::new(v_cell * self.cells_series as f64))
    }

    /// Module output current at a prescribed terminal voltage, solved with a
    /// bracketed Newton/bisection hybrid on the implicit cell equation.
    ///
    /// Valid for any finite non-negative voltage; beyond `Voc` the returned
    /// current is negative (the diode conducts), mirroring the physics.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::NoConvergence`] if the solver exhausts its
    /// iteration budget (not expected for physical inputs) and
    /// [`PvError::InvalidParameter`] for non-finite voltage.
    pub fn current_at(&self, env: CellEnv, voltage: Volts) -> Result<Amps, PvError> {
        self.solver(env).current_at(voltage)
    }

    /// [`Self::current_at`] plus the solver-iteration count, for telemetry;
    /// see [`ModuleSolver::current_at_counted`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::current_at`].
    pub fn current_at_counted(&self, env: CellEnv, voltage: Volts) -> Result<(Amps, u32), PvError> {
        self.solver(env).current_at_counted(voltage)
    }

    /// Output power at a prescribed terminal voltage.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Self::current_at`].
    pub fn power_at(&self, env: CellEnv, voltage: Volts) -> Result<Watts, PvError> {
        Ok(voltage * self.current_at(env, voltage)?)
    }

    /// Locates the maximum power point under the given environment.
    ///
    /// Delegates to [`mpp::find_mpp`]; see that function for the algorithm.
    pub fn mpp(&self, env: CellEnv) -> MppPoint {
        mpp::find_mpp(self, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Celsius, Irradiance};

    fn stc() -> CellEnv {
        CellEnv::stc()
    }

    #[test]
    fn rejects_zero_layout() {
        let cell = PvModule::bp3180n().cell;
        assert!(PvModule::new("m", cell, 0, 1).is_err());
        assert!(PvModule::new("m", cell, 72, 0).is_err());
    }

    #[test]
    fn bp3180n_matches_datasheet_at_stc() {
        let m = PvModule::bp3180n();
        let isc = m.short_circuit_current(stc());
        let voc = m.open_circuit_voltage(stc());
        assert!((isc.get() - 5.4).abs() < 0.1, "Isc = {isc}");
        assert!((voc.get() - 44.8).abs() < 0.5, "Voc = {voc}");
        let mpp = m.mpp(stc());
        assert!(
            (mpp.power.get() - 180.0).abs() < 5.0,
            "Pmax = {}",
            mpp.power
        );
        assert!(
            (mpp.voltage.get() - 36.1).abs() < 1.5,
            "Vmp = {}",
            mpp.voltage
        );
        assert!(
            (mpp.current.get() - 4.98).abs() < 0.25,
            "Imp = {}",
            mpp.current
        );
    }

    #[test]
    fn current_is_monotone_decreasing_in_voltage() {
        let m = PvModule::bp3180n();
        let mut prev = f64::INFINITY;
        for step in 0..=45 {
            let v = Volts::new(step as f64);
            let i = m.current_at(stc(), v).unwrap().get();
            assert!(i < prev + 1e-9, "I-V must be non-increasing");
            prev = i;
        }
    }

    #[test]
    fn current_beyond_voc_is_negative() {
        let m = PvModule::bp3180n();
        let voc = m.open_circuit_voltage(stc());
        let i = m.current_at(stc(), voc + Volts::new(1.0)).unwrap();
        assert!(i.get() < 0.0);
    }

    #[test]
    fn voltage_at_is_inverse_of_current_at() {
        let m = PvModule::bp3180n();
        for amps in [0.5, 2.0, 4.0, 5.0] {
            let v = m.voltage_at(stc(), Amps::new(amps)).unwrap();
            let i = m.current_at(stc(), v).unwrap();
            assert!((i.get() - amps).abs() < 1e-6, "roundtrip at {amps} A");
        }
    }

    #[test]
    fn voltage_at_rejects_current_above_photocurrent() {
        let m = PvModule::bp3180n();
        assert!(m.voltage_at(stc(), Amps::new(10.0)).is_err());
    }

    #[test]
    fn higher_irradiance_raises_isc_and_mpp() {
        let m = PvModule::bp3180n();
        let half = CellEnv::new(Irradiance::new(500.0), Celsius::new(25.0));
        let isc_half = m.short_circuit_current(half);
        let isc_full = m.short_circuit_current(stc());
        assert!((isc_half.get() * 2.0 - isc_full.get()).abs() < 0.05);
        assert!(m.mpp(half).power < m.mpp(stc()).power);
    }

    #[test]
    fn higher_temperature_lowers_voc_and_power() {
        // Figure 7 of the paper: Voc drops and Pmax falls as T rises.
        let m = PvModule::bp3180n();
        let hot = CellEnv::new(Irradiance::new(1000.0), Celsius::new(75.0));
        assert!(m.open_circuit_voltage(hot) < m.open_circuit_voltage(stc()));
        assert!(m.mpp(hot).power < m.mpp(stc()).power);
        // And Isc increases slightly with temperature.
        assert!(m.short_circuit_current(hot) > m.short_circuit_current(stc()));
    }

    #[test]
    fn darkness_produces_no_power() {
        let m = PvModule::bp3180n();
        let dark = CellEnv::dark(Celsius::new(25.0));
        assert_eq!(m.open_circuit_voltage(dark), Volts::ZERO);
        let i = m.current_at(dark, Volts::new(5.0)).unwrap();
        assert!(i.get() <= 0.0, "dark current flows backwards");
    }

    #[test]
    fn parallel_strings_scale_current_not_voltage() {
        let single = PvModule::bp3180n();
        let double = PvModule::new("2p", *single.cell(), single.cells_series(), 2).unwrap();
        let env = stc();
        assert_eq!(
            single.open_circuit_voltage(env),
            double.open_circuit_voltage(env)
        );
        let i1 = single.short_circuit_current(env);
        let i2 = double.short_circuit_current(env);
        assert!((i2.get() - 2.0 * i1.get()).abs() < 1e-6);
    }

    #[test]
    fn rejects_non_finite_voltage() {
        let m = PvModule::bp3180n();
        assert!(m.current_at(stc(), Volts::new(f64::NAN)).is_err());
        assert!(m.current_at(stc(), Volts::new(f64::INFINITY)).is_err());
    }
}
