//! Strongly-typed physical quantities shared across the SolarCore workspace.
//!
//! Each quantity is a transparent newtype over `f64` (C-NEWTYPE). Arithmetic
//! is provided where the result is physically meaningful: e.g.
//! `Volts * Amps = Watts`, `Watts * Seconds = Joules`. Quantities that do not
//! combine meaningfully simply do not implement the corresponding operator,
//! so unit errors become compile errors.
//!
//! # Examples
//!
//! ```
//! use pv::units::{Volts, Amps, Watts};
//!
//! let p: Watts = Volts::new(12.0) * Amps::new(3.0);
//! assert_eq!(p, Watts::new(36.0));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the common boilerplate for an `f64` newtype quantity.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw `f64` value expressed in the quantity's base unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the underlying `f64` in the quantity's base unit.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN (same contract as
            /// [`f64::clamp`]).
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` if the underlying value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules (watt-seconds).
    Joules,
    "J"
);
quantity!(
    /// Energy in watt-hours; the natural unit for day-scale solar budgets.
    WattHours,
    "Wh"
);
quantity!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Irradiance (solar power density) in watts per square metre.
    Irradiance,
    "W/m²"
);
quantity!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Time span in seconds.
    Seconds,
    "s"
);

impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.get() * rhs.get())
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;
    #[inline]
    fn div(self, rhs: Amps) -> Ohms {
        Ohms::new(self.get() / rhs.get())
    }
}

impl Div<Ohms> for Volts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Ohms) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts::new(self.get() * rhs.get())
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}

impl Div<Amps> for Watts {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Amps) -> Volts {
        Volts::new(self.get() / rhs.get())
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.get() * rhs.get())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.get() / rhs.get())
    }
}

impl Joules {
    /// Converts to watt-hours.
    #[inline]
    pub fn to_watt_hours(self) -> WattHours {
        WattHours::new(self.get() / 3600.0)
    }
}

impl WattHours {
    /// Converts to joules.
    #[inline]
    pub fn to_joules(self) -> Joules {
        Joules::new(self.get() * 3600.0)
    }
}

impl Celsius {
    /// Converts to kelvin (adds 273.15).
    #[inline]
    pub fn to_kelvin(self) -> f64 {
        self.get() + 273.15
    }

    /// Creates a Celsius temperature from kelvin.
    #[inline]
    pub fn from_kelvin(kelvin: f64) -> Self {
        Self::new(kelvin - 273.15)
    }
}

impl Hertz {
    /// Convenience constructor from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Self {
        Self::new(ghz * 1.0e9)
    }

    /// Value in gigahertz.
    #[inline]
    pub const fn to_ghz(self) -> f64 {
        self.get() / 1.0e9
    }
}

impl Seconds {
    /// Convenience constructor from minutes.
    #[inline]
    pub const fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volt_amp_product_is_watts() {
        let p = Volts::new(12.0) * Amps::new(2.5);
        assert_eq!(p, Watts::new(30.0));
        let p2 = Amps::new(2.5) * Volts::new(12.0);
        assert_eq!(p, p2);
    }

    #[test]
    fn ohms_law_roundtrip() {
        let v = Volts::new(36.0);
        let i = Amps::new(4.5);
        let r = v / i;
        assert!((r.get() - 8.0).abs() < 1e-12);
        let v2 = i * r;
        assert!((v2.get() - 36.0).abs() < 1e-12);
        let i2 = v / r;
        assert!((i2.get() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn power_to_energy_and_back() {
        let e = Watts::new(100.0) * Seconds::from_minutes(6.0);
        assert_eq!(e, Joules::new(36_000.0));
        assert_eq!(e.to_watt_hours(), WattHours::new(10.0));
        assert_eq!(WattHours::new(10.0).to_joules(), e);
        assert_eq!(e / Seconds::new(360.0), Watts::new(100.0));
    }

    #[test]
    fn celsius_kelvin_conversion() {
        assert!((Celsius::new(25.0).to_kelvin() - 298.15).abs() < 1e-12);
        let back = Celsius::from_kelvin(298.15);
        assert!((back.get() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn hertz_ghz_roundtrip() {
        let f = Hertz::from_ghz(2.5);
        assert_eq!(f.get(), 2.5e9);
        assert_eq!(f.to_ghz(), 2.5);
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless() {
        let ratio: f64 = Watts::new(82.0) / Watts::new(100.0);
        assert!((ratio - 0.82).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let mut w = Watts::new(10.0);
        w += Watts::new(5.0);
        w -= Watts::new(3.0);
        assert_eq!(w, Watts::new(12.0));
        assert!(Watts::new(1.0) < Watts::new(2.0));
        assert_eq!(-Watts::new(4.0), Watts::new(-4.0));
        assert_eq!(Watts::new(4.0) * 2.0, Watts::new(8.0));
        assert_eq!(2.0 * Watts::new(4.0), Watts::new(8.0));
        assert_eq!(Watts::new(8.0) / 2.0, Watts::new(4.0));
        assert_eq!(Watts::new(-3.0).abs(), Watts::new(3.0));
        assert_eq!(Watts::new(3.0).max(Watts::new(5.0)), Watts::new(5.0));
        assert_eq!(Watts::new(3.0).min(Watts::new(5.0)), Watts::new(3.0));
        assert_eq!(
            Watts::new(7.0).clamp(Watts::ZERO, Watts::new(5.0)),
            Watts::new(5.0)
        );
    }

    #[test]
    fn sum_over_iterator() {
        let total: Watts = (1..=4).map(|i| Watts::new(i as f64)).sum();
        assert_eq!(total, Watts::new(10.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{:.1}", Volts::new(1.4499)), "1.4 V");
        assert_eq!(format!("{}", Amps::new(2.0)), "2 A");
        assert_eq!(format!("{:.0}", Irradiance::new(1000.0)), "1000 W/m²");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Watts::ZERO).is_empty());
    }
}
