//! PV array: series/parallel composition of identical modules.
//!
//! The paper sizes the array to the multi-core load it studies (an 8-core
//! chip drawing up to ≈150 W); [`PvArray::solarcore_default`] provides that
//! configuration.

use crate::cell::CellEnv;
use crate::error::PvError;
use crate::generator::PvGenerator;
use crate::module::PvModule;
use crate::mpp::{self, MppPoint};
use crate::units::{Amps, Volts};

/// An array of identical PV modules: `modules_series` in series per string,
/// `strings_parallel` strings in parallel, all under uniform conditions.
///
/// # Examples
///
/// ```
/// use pv::{PvArray, PvModule, CellEnv};
/// use pv::generator::PvGenerator;
///
/// let array = PvArray::new(PvModule::bp3180n(), 1, 1)?;
/// assert!(array.mpp(CellEnv::stc()).power.get() > 170.0);
/// # Ok::<(), pv::PvError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PvArray {
    module: PvModule,
    modules_series: u32,
    strings_parallel: u32,
}

impl PvArray {
    /// Builds an array from a module prototype and a layout.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] if either count is zero.
    pub fn new(
        module: PvModule,
        modules_series: u32,
        strings_parallel: u32,
    ) -> Result<Self, PvError> {
        if modules_series == 0 {
            return Err(PvError::InvalidParameter {
                name: "modules_series",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        if strings_parallel == 0 {
            return Err(PvError::InvalidParameter {
                name: "strings_parallel",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        Ok(Self {
            module,
            modules_series,
            strings_parallel,
        })
    }

    /// The array configuration used throughout the SolarCore experiments:
    /// a single BP3180N module (180 W nameplate), matching the ≈75–150 W
    /// power range of the simulated 8-core processor (Figures 13–14 plot
    /// budgets up to ~100 W and ~150 W).
    #[allow(clippy::expect_used)]
    pub fn solarcore_default() -> Self {
        // lint:allow(panic): compile-time-constant paper layout, pinned by a unit test
        Self::new(PvModule::bp3180n(), 1, 1).expect("static layout is valid")
    }

    /// The module prototype.
    pub fn module(&self) -> &PvModule {
        &self.module
    }

    /// Modules in series per string.
    pub fn modules_series(&self) -> u32 {
        self.modules_series
    }

    /// Parallel strings.
    pub fn strings_parallel(&self) -> u32 {
        self.strings_parallel
    }
}

impl PvGenerator for PvArray {
    fn open_circuit_voltage(&self, env: CellEnv) -> Volts {
        self.module.open_circuit_voltage(env) * self.modules_series as f64
    }

    fn current_at(&self, env: CellEnv, voltage: Volts) -> Result<Amps, PvError> {
        let per_module = voltage / self.modules_series as f64;
        Ok(self.module.current_at(env, per_module)? * self.strings_parallel as f64)
    }

    fn current_at_counted(&self, env: CellEnv, voltage: Volts) -> Result<(Amps, u32), PvError> {
        let per_module = voltage / self.modules_series as f64;
        let (current, iters) = self.module.current_at_counted(env, per_module)?;
        Ok((current * self.strings_parallel as f64, iters))
    }

    fn mpp(&self, env: CellEnv) -> MppPoint {
        let module_mpp = mpp::find_mpp(&self.module, env);
        MppPoint {
            voltage: module_mpp.voltage * self.modules_series as f64,
            current: module_mpp.current * self.strings_parallel as f64,
            power: module_mpp.power * (self.modules_series * self.strings_parallel) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Watts;

    #[test]
    fn rejects_zero_layout() {
        assert!(PvArray::new(PvModule::bp3180n(), 0, 1).is_err());
        assert!(PvArray::new(PvModule::bp3180n(), 1, 0).is_err());
    }

    #[test]
    fn two_by_three_array_scales_mpp() {
        let single = PvArray::new(PvModule::bp3180n(), 1, 1).unwrap();
        let array = PvArray::new(PvModule::bp3180n(), 2, 3).unwrap();
        let env = CellEnv::stc();
        let s = single.mpp(env);
        let a = array.mpp(env);
        assert!((a.voltage.get() - 2.0 * s.voltage.get()).abs() < 1e-6);
        assert!((a.current.get() - 3.0 * s.current.get()).abs() < 1e-6);
        assert!((a.power.get() - 6.0 * s.power.get()).abs() < 1e-6);
    }

    #[test]
    fn array_current_consistent_with_module() {
        let array = PvArray::new(PvModule::bp3180n(), 2, 2).unwrap();
        let env = CellEnv::stc();
        let v = Volts::new(72.0); // 36 V per module
        let i = array.current_at(env, v).unwrap();
        let i_module = array.module().current_at(env, Volts::new(36.0)).unwrap();
        assert!((i.get() - 2.0 * i_module.get()).abs() < 1e-9);
    }

    #[test]
    fn default_array_covers_multicore_budget() {
        let array = PvArray::solarcore_default();
        let p: Watts = array.mpp(CellEnv::stc()).power;
        assert!(p.get() > 150.0, "array must cover the 8-core peak: {p}");
    }
}
