//! Extraction of single-diode parameters from manufacturer datasheet values.
//!
//! The paper models the BP3180N module from its datasheet (reference 11 in the
//! paper). Given the four cardinal points (`Isc`, `Voc`, `Vmp`, `Imp`), this
//! module fits the diode ideality factor `n` and series resistance `Rs` so
//! that the model reproduces the cardinal points at STC:
//!
//! 1. set `Iph = Isc` (good-cell approximation, Section 2.2);
//! 2. for a candidate `n`, derive `I0` from the open-circuit condition:
//!    `I0 = Iph / (exp(Voc / (Ns·n·Vt)) − 1)`;
//! 3. derive `Rs` from forcing the curve through `(Vmp, Imp)` (closed form);
//! 4. scan `n` and keep the candidate whose *computed* MPP lands closest to
//!    the datasheet `(Vmp, Imp)`.

use crate::cell::{CellEnv, CellParams};
use crate::constants::{thermal_voltage, STC_TEMPERATURE};
use crate::error::PvError;
use crate::module::PvModule;
use crate::units::{Amps, Ohms, Volts, Watts};

/// Manufacturer datasheet values at standard test conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct Datasheet {
    /// Module marketing name.
    pub name: String,
    /// Short-circuit current at STC.
    pub isc: Amps,
    /// Open-circuit voltage at STC.
    pub voc: Volts,
    /// Voltage at the maximum power point.
    pub vmp: Volts,
    /// Current at the maximum power point.
    pub imp: Amps,
    /// Number of series-connected cells.
    pub cells_series: u32,
    /// Temperature coefficient of `Isc`, in A/°C.
    pub isc_temp_coeff: f64,
}

impl Datasheet {
    /// The BP3180N 180 W polycrystalline module (paper reference 11).
    ///
    /// Isc temperature coefficient is (0.065 %/°C)·Isc ≈ 3.5 mA/°C.
    pub fn bp3180n() -> Self {
        Self {
            name: "BP3180N".to_owned(),
            isc: Amps::new(5.4),
            voc: Volts::new(44.8),
            vmp: Volts::new(36.1),
            imp: Amps::new(4.98),
            cells_series: 72,
            isc_temp_coeff: 0.000_65 * 5.4, // 0.065 %/°C of Isc ≈ 3.5 mA/°C
        }
    }

    /// Nameplate power `Vmp × Imp`.
    pub fn pmax(&self) -> Watts {
        self.vmp * self.imp
    }

    /// Fits a [`PvModule`] whose modeled MPP matches the datasheet cardinal
    /// points at STC.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] for inconsistent inputs (e.g.
    /// `Imp >= Isc`, `Vmp >= Voc`) and [`PvError::FitFailed`] if no candidate
    /// in the ideality scan reproduces the MPP within 2 % relative error.
    pub fn fit(&self) -> Result<PvModule, PvError> {
        if self.imp.get() >= self.isc.get() {
            return Err(PvError::InvalidParameter {
                name: "imp",
                value: self.imp.get(),
                constraint: "must be below isc",
            });
        }
        if self.vmp.get() >= self.voc.get() {
            return Err(PvError::InvalidParameter {
                name: "vmp",
                value: self.vmp.get(),
                constraint: "must be below voc",
            });
        }
        if self.cells_series == 0 {
            return Err(PvError::InvalidParameter {
                name: "cells_series",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }

        let vt = thermal_voltage(STC_TEMPERATURE).get();
        let ns = self.cells_series as f64;
        let iph = self.isc.get();

        let mut best: Option<(f64, PvModule)> = None;
        // Scan the physically plausible ideality range.
        let mut n = 1.0;
        while n <= 1.80 + 1e-9 {
            if let Some(module) = self.candidate(n, vt, ns, iph) {
                let mpp = module.mpp(CellEnv::stc());
                let rel_v = (mpp.voltage.get() - self.vmp.get()).abs() / self.vmp.get();
                let rel_i = (mpp.current.get() - self.imp.get()).abs() / self.imp.get();
                let residual = rel_v + rel_i;
                if best.as_ref().is_none_or(|(r, _)| residual < *r) {
                    best = Some((residual, module));
                }
            }
            n += 0.01;
        }

        match best {
            Some((residual, module)) if residual < 0.04 => Ok(module),
            Some((residual, _)) => Err(PvError::FitFailed { residual }),
            None => Err(PvError::FitFailed {
                residual: f64::INFINITY,
            }),
        }
    }

    /// Builds the candidate module for one ideality factor, or `None` if the
    /// implied `Rs` is unphysical.
    fn candidate(&self, n: f64, vt: f64, ns: f64, iph: f64) -> Option<PvModule> {
        let nvt = n * vt;
        // Open-circuit condition per cell: Voc/Ns = n·Vt·ln(Iph/I0 + 1).
        let i0 = iph / ((self.voc.get() / (ns * nvt)).exp() - 1.0);
        if !(i0.is_finite() && i0 > 0.0) {
            return None;
        }
        // Force the curve through (Vmp, Imp):
        // Imp = Iph − I0·(exp((Vmp/Ns + Imp·Rs)/(n·Vt)) − 1)
        // ⇒ Rs = (n·Vt·ln((Iph − Imp)/I0 + 1) − Vmp/Ns) / Imp
        let rs =
            (nvt * ((iph - self.imp.get()) / i0 + 1.0).ln() - self.vmp.get() / ns) / self.imp.get();
        if !(rs.is_finite() && rs >= 0.0) {
            return None;
        }
        let cell = CellParams::new(
            Amps::new(iph),
            Amps::new(i0),
            n,
            Ohms::new(rs),
            self.isc_temp_coeff,
        )
        .ok()?;
        PvModule::new(self.name.clone(), cell, self.cells_series, 1).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bp3180n_nameplate_power() {
        let ds = Datasheet::bp3180n();
        assert!((ds.pmax().get() - 179.8).abs() < 0.5);
    }

    #[test]
    fn fit_reproduces_cardinal_points() {
        let ds = Datasheet::bp3180n();
        let module = ds.fit().unwrap();
        let env = CellEnv::stc();
        let mpp = module.mpp(env);
        assert!((mpp.voltage.get() - ds.vmp.get()).abs() / ds.vmp.get() < 0.02);
        assert!((mpp.current.get() - ds.imp.get()).abs() / ds.imp.get() < 0.02);
        assert!((module.open_circuit_voltage(env).get() - ds.voc.get()).abs() < 0.3);
        assert!((module.short_circuit_current(env).get() - ds.isc.get()).abs() < 0.1);
    }

    #[test]
    fn fit_rejects_inconsistent_datasheet() {
        let mut ds = Datasheet::bp3180n();
        ds.imp = Amps::new(6.0); // above Isc
        assert!(ds.fit().is_err());

        let mut ds = Datasheet::bp3180n();
        ds.vmp = Volts::new(50.0); // above Voc
        assert!(ds.fit().is_err());

        let mut ds = Datasheet::bp3180n();
        ds.cells_series = 0;
        assert!(ds.fit().is_err());
    }

    #[test]
    fn fit_works_for_other_realistic_modules() {
        // A mono-Si 200 W class module.
        let ds = Datasheet {
            name: "Generic200".to_owned(),
            isc: Amps::new(5.8),
            voc: Volts::new(45.9),
            vmp: Volts::new(37.6),
            imp: Amps::new(5.32),
            cells_series: 72,
            isc_temp_coeff: 0.0035,
        };
        let module = ds.fit().unwrap();
        let mpp = module.mpp(CellEnv::stc());
        assert!((mpp.power.get() - ds.pmax().get()).abs() / ds.pmax().get() < 0.03);
    }
}
