//! Warm-started I-V solving and bitwise-transparent result caching.
//!
//! The SolarCore engine solves the module's implicit I-V equation hundreds
//! of thousands of times per simulated day — per tracking perturbation, per
//! golden-section MPP probe, per bisection step of the operating-point
//! solver. Two observations make that hot path fast without changing a
//! single output bit:
//!
//! 1. **Coefficient hoisting** ([`ModuleSolver`]): within one `(G, T)`
//!    environment the photocurrent `Iph`, saturation current `I0` and the
//!    slope scale `n·Vt` are constants, yet the naive solver recomputed
//!    them (two transcendental-heavy evaluations) on every Newton
//!    iteration. The solver resolves them once per environment and replays
//!    the *exact same arithmetic* against the resolved values, so every
//!    returned bit matches the cold path.
//! 2. **Exact-bits memoization** ([`ArrayCache`] / [`CachedArray`]): the
//!    controller's perturb-and-observe loop and the per-minute budget
//!    oracle re-evaluate *identical* `(G, T, V)` triples many times over.
//!    A bounded, deterministic, set-associative memo keyed on
//!    [`f64::to_bits`] returns the previously computed bits verbatim.
//!    Exact-key lookups can never substitute a "close enough" neighbour,
//!    which is what keeps the determinism harness hashes unchanged.
//!
//! Deliberately *not* implemented: seeding Newton from a neighbouring
//! operating point. A different starting iterate walks a different
//! iteration path and converges to a ULP-different root, which would break
//! the bitwise-reproducibility contract (see DESIGN.md §13).
//!
//! The memo structure is a fixed-capacity array of 4-way sets with
//! eldest-stamp replacement — no `HashMap` (iteration-order hazard flagged
//! by `cargo xtask analyze`), no unbounded growth, no ambient state.

use core::cell::RefCell;

use crate::array::PvArray;
use crate::cell::{CellCoeffs, CellEnv};
use crate::error::PvError;
use crate::generator::PvGenerator;
use crate::module::PvModule;
use crate::mpp::{self, MppPoint};
use crate::units::{Amps, Volts, Watts};

/// A per-environment module solver: [`CellCoeffs`] resolved once, then
/// reused across every residual evaluation of every solve under the same
/// `(G, T)`.
///
/// All methods are bitwise identical to the corresponding [`PvModule`]
/// methods (which construct a throwaway solver per call); holding a solver
/// across calls only amortizes the coefficient resolution.
#[derive(Debug, Clone)]
pub struct ModuleSolver<'m> {
    module: &'m PvModule,
    env: CellEnv,
    coeffs: CellCoeffs,
}

/// Maximum iterations for the hybrid Newton/bisection current solver.
const MAX_SOLVER_ITERS: u32 = 128;

/// Convergence tolerance on the current residual, in amperes.
const CURRENT_TOLERANCE: f64 = 1e-10;

impl<'m> ModuleSolver<'m> {
    /// Resolves the `(G, T)` coefficients of `module` under `env`.
    pub fn new(module: &'m PvModule, env: CellEnv) -> Self {
        Self {
            module,
            env,
            coeffs: CellCoeffs::resolve(module.cell(), env),
        }
    }

    /// The module this solver was resolved for.
    pub fn module(&self) -> &'m PvModule {
        self.module
    }

    /// The environment this solver was resolved for.
    pub fn env(&self) -> CellEnv {
        self.env
    }

    /// Open-circuit voltage `Voc` (closed form); zero in darkness.
    pub fn open_circuit_voltage(&self) -> Volts {
        let v_cell = self.coeffs.open_circuit_cell_voltage();
        if v_cell <= Volts::ZERO {
            return Volts::ZERO;
        }
        Volts::new(v_cell.get() * self.module.cells_series() as f64)
    }

    /// Module output current at a prescribed terminal voltage — the
    /// bracketed Newton/bisection hybrid of [`PvModule::current_at`], run
    /// against the pre-resolved coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::NoConvergence`] if the solver exhausts its
    /// iteration budget (not expected for physical inputs) and
    /// [`PvError::InvalidParameter`] for non-finite voltage.
    pub fn current_at(&self, voltage: Volts) -> Result<Amps, PvError> {
        Ok(self.current_at_counted(voltage)?.0)
    }

    /// [`Self::current_at`] plus the number of Newton/bisection iterations
    /// the solve took — the telemetry subsystem's per-solve cost signal
    /// (DESIGN.md §14). The arithmetic is *identical* to `current_at`
    /// (which now delegates here), so counting is observationally free:
    /// every returned current bit is unchanged.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::current_at`].
    pub fn current_at_counted(&self, voltage: Volts) -> Result<(Amps, u32), PvError> {
        if !voltage.is_finite() {
            return Err(PvError::InvalidParameter {
                name: "voltage",
                value: voltage.get(),
                constraint: "must be finite",
            });
        }
        let v_cell = Volts::new(voltage.get() / self.module.cells_series() as f64);
        let iph = self.coeffs.photocurrent().get();

        // Bracket the root of the strictly-decreasing residual f(i):
        // f(iph) <= 0 always; expand the lower bound until f(lo) >= 0.
        let mut hi = iph;
        let mut lo = 0.0_f64.min(-0.01 * iph.max(1.0));
        let mut expand = 0;
        while self.coeffs.residual(v_cell, Amps::new(lo)).get() < 0.0 {
            lo = lo * 4.0 - 1.0;
            expand += 1;
            if expand > 64 {
                return Err(PvError::NoConvergence {
                    context: "bracketing module current",
                    iterations: expand,
                });
            }
        }
        debug_assert!(self.coeffs.residual(v_cell, Amps::new(hi)).get() <= 0.0);

        // Newton iterations, falling back to bisection whenever the step
        // would leave the bracket (guaranteed convergence).
        let strings = self.module.strings_parallel() as f64;
        let mut i = 0.5 * (lo + hi);
        for iter in 0..MAX_SOLVER_ITERS {
            let f = self.coeffs.residual(v_cell, Amps::new(i)).get();
            if f.abs() < CURRENT_TOLERANCE {
                return Ok((Amps::new(i * strings), iter + 1));
            }
            if f > 0.0 {
                lo = i;
            } else {
                hi = i;
            }
            let df = self.coeffs.residual_di(v_cell, Amps::new(i));
            let newton = i - f / df;
            i = if newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
            if (hi - lo).abs() < CURRENT_TOLERANCE {
                return Ok((Amps::new(i * strings), iter + 1));
            }
        }
        Err(PvError::NoConvergence {
            context: "module current at voltage",
            iterations: MAX_SOLVER_ITERS,
        })
    }

    /// Output power at a prescribed terminal voltage.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Self::current_at`].
    pub fn power_at(&self, voltage: Volts) -> Result<Watts, PvError> {
        Ok(voltage * self.current_at(voltage)?)
    }

    /// Locates the module's maximum power point; delegates to
    /// [`mpp::find_mpp_with`] so the whole golden-section search shares one
    /// coefficient resolution.
    pub fn mpp(&self) -> MppPoint {
        mpp::find_mpp_with(self)
    }
}

/// Exact-bits key of one cached quantity: the `to_bits` patterns of
/// irradiance and temperature, plus (for I-V solves) the terminal voltage.
type EnvKey = (u64, u64);

/// Key of one I-V solve: environment plus terminal-voltage bits.
type SolveKey = (u64, u64, u64);

/// Associativity of the memo sets: replacement candidates per index.
const WAYS: usize = 4;

/// Sets in the I-V solve memo (capacity = `SOLVE_SETS × WAYS` entries).
/// Sized to hold the working set of a few simulated minutes of controller
/// perturbation with room to spare; ~40 B/entry, so ≈160 KiB total.
const SOLVE_SETS: usize = 1024;

/// Sets in the per-environment memo (`Voc`, MPP). A simulated day has 601
/// distinct `(G, T)` samples; `512 × 4` entries keep a whole day resident
/// so every policy after the first in a batch hits.
const ENV_SETS: usize = 512;

/// One stored I-V solve.
#[derive(Debug, Clone, Copy)]
struct SolveEntry {
    key: SolveKey,
    /// `to_bits` of the solved current — stored and returned verbatim.
    current_bits: u64,
    /// Replacement stamp (monotonic per cache; eldest way is evicted).
    stamp: u64,
}

/// One stored per-environment record.
#[derive(Debug, Clone, Copy)]
struct EnvEntry {
    key: EnvKey,
    /// `to_bits` of the open-circuit voltage, when resolved.
    voc_bits: Option<u64>,
    /// The located maximum power point, when resolved.
    mpp: Option<MppPoint>,
    stamp: u64,
}

/// FNV-1a over the key bytes — deterministic, platform-independent set
/// indexing (the same construction the determinism harness hashes with).
fn fnv(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

// Set indices are `hash % set-count` with set-count ≤ 1024, so the cast
// cannot truncate.
#[allow(clippy::cast_possible_truncation)]
fn set_index(hash: u64, sets: usize) -> usize {
    (hash % sets as u64) as usize
}

/// Mutable interior of an [`ArrayCache`].
#[derive(Debug)]
struct CacheState {
    solves: Vec<[Option<SolveEntry>; WAYS]>,
    envs: Vec<[Option<EnvEntry>; WAYS]>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl CacheState {
    fn new() -> Self {
        Self {
            solves: vec![[None; WAYS]; SOLVE_SETS],
            envs: vec![[None; WAYS]; ENV_SETS],
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.stamp = self.stamp.wrapping_add(1);
        self.stamp
    }

    fn lookup_solve(&mut self, key: SolveKey) -> Option<u64> {
        let idx = set_index(fnv(&[key.0, key.1, key.2]), self.solves.len());
        let stamp = self.tick();
        for entry in self.solves[idx].iter_mut().flatten() {
            if entry.key == key {
                entry.stamp = stamp;
                self.hits += 1;
                return Some(entry.current_bits);
            }
        }
        self.misses += 1;
        None
    }

    fn store_solve(&mut self, key: SolveKey, current_bits: u64) {
        let idx = set_index(fnv(&[key.0, key.1, key.2]), self.solves.len());
        let stamp = self.tick();
        let entry = SolveEntry {
            key,
            current_bits,
            stamp,
        };
        let set = &mut self.solves[idx];
        let slot = eldest_way(set.iter().map(|w| w.as_ref().map(|e| e.stamp)));
        set[slot] = Some(entry);
    }

    fn lookup_env(&mut self, key: EnvKey) -> Option<EnvEntry> {
        let idx = set_index(fnv(&[key.0, key.1]), self.envs.len());
        let stamp = self.tick();
        for entry in self.envs[idx].iter_mut().flatten() {
            if entry.key == key {
                entry.stamp = stamp;
                return Some(*entry);
            }
        }
        None
    }

    /// Merges one field of the per-environment record, creating or
    /// refreshing the entry.
    fn update_env(&mut self, key: EnvKey, voc_bits: Option<u64>, mpp: Option<MppPoint>) {
        let idx = set_index(fnv(&[key.0, key.1]), self.envs.len());
        let stamp = self.tick();
        let set = &mut self.envs[idx];
        for entry in set.iter_mut().flatten() {
            if entry.key == key {
                entry.voc_bits = voc_bits.or(entry.voc_bits);
                entry.mpp = mpp.or(entry.mpp);
                entry.stamp = stamp;
                return;
            }
        }
        let slot = eldest_way(set.iter().map(|w| w.as_ref().map(|e| e.stamp)));
        set[slot] = Some(EnvEntry {
            key,
            voc_bits,
            mpp,
            stamp,
        });
    }
}

/// Picks the replacement way: the first empty slot, else the eldest stamp.
/// Purely a function of cache history — no randomness, no ambient state —
/// so replacement (and therefore every hit/miss sequence) is deterministic.
fn eldest_way(stamps: impl Iterator<Item = Option<u64>>) -> usize {
    let mut slot = 0;
    let mut eldest = u64::MAX;
    for (i, stamp) in stamps.enumerate() {
        match stamp {
            None => return i,
            Some(s) if s < eldest => {
                eldest = s;
                slot = i;
            }
            Some(_) => {}
        }
    }
    slot
}

/// Hit/miss counters of an [`ArrayCache`], for tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-key I-V solve lookups that returned stored bits.
    pub hits: u64,
    /// I-V solve lookups that fell through to the cold solver.
    pub misses: u64,
}

/// Bounded, deterministic memo for one [`PvArray`]'s solved quantities,
/// keyed on exact `f64` bit patterns.
///
/// Interior-mutable (`RefCell`) so it can sit behind the `&self` methods of
/// [`PvGenerator`]; consequently single-threaded by construction, which
/// matches how the engine uses it — one cache per day-simulation run, each
/// run confined to one worker thread of the deterministic `parallel_map`.
#[derive(Debug)]
pub struct ArrayCache {
    state: RefCell<CacheState>,
}

impl Default for ArrayCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ArrayCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            state: RefCell::new(CacheState::new()),
        }
    }

    /// Current hit/miss counters (I-V solve memo only).
    pub fn stats(&self) -> CacheStats {
        let state = self.state.borrow();
        CacheStats {
            hits: state.hits,
            misses: state.misses,
        }
    }
}

/// A [`PvArray`] view that consults an [`ArrayCache`] before solving.
///
/// Every miss delegates to the *plain* [`PvArray`] implementation and
/// stores the returned bits; every hit replays stored bits verbatim. The
/// wrapper therefore cannot produce a value the uncached array would not —
/// bit-transparency is structural, not numerical, and the differential
/// tests in `crates/pv/tests/cache_transparency.rs` verify it end to end.
#[derive(Debug)]
pub struct CachedArray<'a> {
    array: &'a PvArray,
    cache: &'a ArrayCache,
}

impl<'a> CachedArray<'a> {
    /// Attaches a cache to an array.
    pub fn new(array: &'a PvArray, cache: &'a ArrayCache) -> Self {
        Self { array, cache }
    }

    /// The wrapped array.
    pub fn array(&self) -> &'a PvArray {
        self.array
    }

    fn env_key(env: CellEnv) -> EnvKey {
        (
            env.irradiance.get().to_bits(),
            env.temperature.get().to_bits(),
        )
    }
}

impl PvGenerator for CachedArray<'_> {
    fn open_circuit_voltage(&self, env: CellEnv) -> Volts {
        let key = Self::env_key(env);
        let cached = self.cache.state.borrow_mut().lookup_env(key);
        if let Some(bits) = cached.and_then(|e| e.voc_bits) {
            return Volts::new(f64::from_bits(bits));
        }
        let voc = self.array.open_circuit_voltage(env);
        self.cache
            .state
            .borrow_mut()
            .update_env(key, Some(voc.get().to_bits()), None);
        voc
    }

    fn current_at(&self, env: CellEnv, voltage: Volts) -> Result<Amps, PvError> {
        Ok(self.current_at_counted(env, voltage)?.0)
    }

    fn current_at_counted(&self, env: CellEnv, voltage: Volts) -> Result<(Amps, u32), PvError> {
        if !voltage.is_finite() {
            // Error paths are not memoized; delegate for the exact error.
            return self.array.current_at_counted(env, voltage);
        }
        let (g, t) = Self::env_key(env);
        let key = (g, t, voltage.get().to_bits());
        let hit = self.cache.state.borrow_mut().lookup_solve(key);
        if let Some(bits) = hit {
            // A replayed memo entry costs zero solver iterations — exactly
            // what the telemetry histogram should show for a warm cache.
            return Ok((Amps::new(f64::from_bits(bits)), 0));
        }
        let (current, iters) = self.array.current_at_counted(env, voltage)?;
        self.cache
            .state
            .borrow_mut()
            .store_solve(key, current.get().to_bits());
        Ok((current, iters))
    }

    fn mpp(&self, env: CellEnv) -> MppPoint {
        let key = Self::env_key(env);
        let cached = self.cache.state.borrow_mut().lookup_env(key);
        if let Some(point) = cached.and_then(|e| e.mpp) {
            return point;
        }
        let point = self.array.mpp(env);
        self.cache
            .state
            .borrow_mut()
            .update_env(key, None, Some(point));
        point
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Celsius, Irradiance};

    fn env(g: f64, t: f64) -> CellEnv {
        CellEnv::new(Irradiance::new(g), Celsius::new(t))
    }

    #[test]
    fn solver_matches_module_bit_for_bit() {
        let module = PvModule::bp3180n();
        for (g, t) in [(1000.0, 25.0), (450.0, 11.0), (80.0, -3.0), (0.0, 20.0)] {
            let e = env(g, t);
            let solver = ModuleSolver::new(&module, e);
            assert_eq!(
                solver.open_circuit_voltage().get().to_bits(),
                module.open_circuit_voltage(e).get().to_bits()
            );
            for step in 0..=45 {
                let v = Volts::new(step as f64);
                let a = solver.current_at(v).unwrap().get().to_bits();
                let b = module.current_at(e, v).unwrap().get().to_bits();
                assert_eq!(a, b, "G={g} T={t} V={step}");
            }
            let sm = solver.mpp();
            let mm = module.mpp(e);
            assert_eq!(sm.voltage.get().to_bits(), mm.voltage.get().to_bits());
            assert_eq!(sm.power.get().to_bits(), mm.power.get().to_bits());
        }
    }

    #[test]
    fn cached_array_replays_stored_bits() {
        let array = PvArray::solarcore_default();
        let cache = ArrayCache::new();
        let cached = CachedArray::new(&array, &cache);
        let e = env(700.0, 30.0);
        let v = Volts::new(33.5);

        let cold = array.current_at(e, v).unwrap();
        let first = cached.current_at(e, v).unwrap();
        let second = cached.current_at(e, v).unwrap();
        assert_eq!(cold.get().to_bits(), first.get().to_bits());
        assert_eq!(first.get().to_bits(), second.get().to_bits());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cached_mpp_and_voc_match_plain_array() {
        let array = PvArray::solarcore_default();
        let cache = ArrayCache::new();
        let cached = CachedArray::new(&array, &cache);
        let e = env(820.0, 18.5);
        // Twice each: miss then hit, identical bits both times.
        for _ in 0..2 {
            assert_eq!(
                cached.mpp(e).power.get().to_bits(),
                array.mpp(e).power.get().to_bits()
            );
            assert_eq!(
                cached.open_circuit_voltage(e).get().to_bits(),
                array.open_circuit_voltage(e).get().to_bits()
            );
        }
    }

    #[test]
    fn cache_capacity_is_bounded_under_churn() {
        let array = PvArray::solarcore_default();
        let cache = ArrayCache::new();
        let cached = CachedArray::new(&array, &cache);
        // Far more distinct keys than capacity: replacement must cycle
        // without panicking and later lookups must still be correct.
        for step in 0..6000 {
            let v = Volts::new(10.0 + (step % 300) as f64 * 0.1);
            let e = env(400.0 + (step / 300) as f64, 25.0);
            let a = cached.current_at(e, v).unwrap();
            let b = array.current_at(e, v).unwrap();
            assert_eq!(a.get().to_bits(), b.get().to_bits());
        }
    }

    #[test]
    fn error_paths_are_uncached_and_propagate() {
        let array = PvArray::solarcore_default();
        let cache = ArrayCache::new();
        let cached = CachedArray::new(&array, &cache);
        let e = env(1000.0, 25.0);
        assert!(cached.current_at(e, Volts::new(f64::NAN)).is_err());
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn eldest_way_prefers_empty_then_oldest() {
        assert_eq!(eldest_way([None, None].into_iter()), 0);
        assert_eq!(eldest_way([Some(5), None].into_iter()), 1);
        assert_eq!(eldest_way([Some(5), Some(2), Some(9)].into_iter()), 1);
    }
}
