//! Single-diode solar-cell model (Section 2.1 of the paper).
//!
//! The cell is a current source `Iph` in parallel with a diode, plus a
//! series resistance `Rs`. Shunt resistance is neglected (as in the paper).
//! Both the photocurrent and the diode saturation current carry the standard
//! irradiance/temperature dependence:
//!
//! * `Iph(G, T) = (G / G_ref) · (Iph_ref + Ki · (T − T_ref))`
//! * `I0(T) = I0_ref · (T/T_ref)³ · exp(q·Eg/(n·k) · (1/T_ref − 1/T))`

use crate::constants::{
    thermal_voltage, BOLTZMANN, ELEMENTARY_CHARGE, SILICON_BANDGAP_EV, STC_IRRADIANCE,
    STC_TEMPERATURE,
};
use crate::error::PvError;
use crate::units::{Amps, Celsius, Irradiance, Ohms, Volts};

/// Ambient conditions seen by a cell: plane-of-array irradiance and cell
/// temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellEnv {
    /// Plane-of-array irradiance.
    pub irradiance: Irradiance,
    /// Cell (junction) temperature.
    pub temperature: Celsius,
}

impl CellEnv {
    /// Creates a new environment.
    pub const fn new(irradiance: Irradiance, temperature: Celsius) -> Self {
        Self {
            irradiance,
            temperature,
        }
    }

    /// Standard test conditions: 1000 W/m², 25 °C.
    pub const fn stc() -> Self {
        Self::new(STC_IRRADIANCE, STC_TEMPERATURE)
    }

    /// Night/darkness: zero irradiance at the given temperature.
    pub const fn dark(temperature: Celsius) -> Self {
        Self::new(Irradiance::ZERO, temperature)
    }
}

impl Default for CellEnv {
    fn default() -> Self {
        Self::stc()
    }
}

/// Electrical parameters of a single PV cell, referenced to standard test
/// conditions (STC: 1000 W/m², 25 °C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Photocurrent at STC, ≈ the short-circuit current of a good cell.
    pub photocurrent_stc: Amps,
    /// Diode reverse-saturation current at STC.
    pub saturation_current_stc: Amps,
    /// Diode ideality factor `n` (1.0–2.0 for silicon).
    pub ideality: f64,
    /// Lumped series resistance per cell.
    pub series_resistance: Ohms,
    /// Short-circuit current temperature coefficient `Ki` in A/°C.
    pub isc_temp_coeff: f64,
}

impl CellParams {
    /// Validates and constructs cell parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] if any value is outside its
    /// physical range (currents must be positive, ideality in `[0.5, 3]`,
    /// series resistance non-negative).
    pub fn new(
        photocurrent_stc: Amps,
        saturation_current_stc: Amps,
        ideality: f64,
        series_resistance: Ohms,
        isc_temp_coeff: f64,
    ) -> Result<Self, PvError> {
        if photocurrent_stc.get() <= 0.0 || photocurrent_stc.get().is_nan() {
            return Err(PvError::InvalidParameter {
                name: "photocurrent_stc",
                value: photocurrent_stc.get(),
                constraint: "must be > 0",
            });
        }
        if saturation_current_stc.get() <= 0.0 || saturation_current_stc.get().is_nan() {
            return Err(PvError::InvalidParameter {
                name: "saturation_current_stc",
                value: saturation_current_stc.get(),
                constraint: "must be > 0",
            });
        }
        if !(0.5..=3.0).contains(&ideality) {
            return Err(PvError::InvalidParameter {
                name: "ideality",
                value: ideality,
                constraint: "must be in [0.5, 3.0]",
            });
        }
        if !(series_resistance.get() >= 0.0 && series_resistance.get().is_finite()) {
            return Err(PvError::InvalidParameter {
                name: "series_resistance",
                value: series_resistance.get(),
                constraint: "must be >= 0 and finite",
            });
        }
        if !isc_temp_coeff.is_finite() {
            return Err(PvError::InvalidParameter {
                name: "isc_temp_coeff",
                value: isc_temp_coeff,
                constraint: "must be finite",
            });
        }
        Ok(Self {
            photocurrent_stc,
            saturation_current_stc,
            ideality,
            series_resistance,
            isc_temp_coeff,
        })
    }

    /// Photocurrent under the given environment:
    /// `Iph = (G/G_ref) · (Iph_ref + Ki·(T − T_ref))`.
    ///
    /// Irradiance below zero is treated as darkness (zero photocurrent).
    pub fn photocurrent(&self, env: CellEnv) -> Amps {
        let g_ratio = (env.irradiance.get() / STC_IRRADIANCE.get()).max(0.0);
        let dt = env.temperature.get() - STC_TEMPERATURE.get();
        let iph = g_ratio * (self.photocurrent_stc.get() + self.isc_temp_coeff * dt);
        Amps::new(iph.max(0.0))
    }

    /// Diode reverse-saturation current at the given temperature, using the
    /// standard cubic × band-gap Arrhenius scaling.
    pub fn saturation_current(&self, temperature: Celsius) -> Amps {
        let t = temperature.to_kelvin();
        let t_ref = STC_TEMPERATURE.to_kelvin();
        let cubic = (t / t_ref).powi(3);
        let arg = ELEMENTARY_CHARGE * SILICON_BANDGAP_EV / (self.ideality * BOLTZMANN)
            * (1.0 / t_ref - 1.0 / t);
        Amps::new(self.saturation_current_stc.get() * cubic * arg.exp())
    }

    /// The product `n · Vt` (ideality times thermal voltage) at temperature
    /// `T`; the natural slope scale of the diode exponential.
    pub fn n_vt(&self, temperature: Celsius) -> f64 {
        self.ideality * thermal_voltage(temperature).get()
    }

    /// Evaluates the implicit cell equation residual
    /// `f(I) = Iph − I0·(exp((V + I·Rs)/(n·Vt)) − 1) − I`
    /// at the given terminal voltage and trial current.
    ///
    /// The root of `f` in `I` is the cell's operating current at voltage `V`.
    /// `f` is strictly decreasing in `I`, which the solvers rely on.
    pub fn current_residual(&self, env: CellEnv, voltage: Volts, current: Amps) -> Amps {
        CellCoeffs::resolve(self, env).residual(voltage, current)
    }

    /// Derivative of [`Self::current_residual`] with respect to `I` (always
    /// negative), used by the Newton step in the module solver.
    // lint:allow(raw-f64): dF/dI is dimensionless (amps per amp) — no newtype fits
    pub fn current_residual_di(&self, env: CellEnv, voltage: Volts, current: Amps) -> f64 {
        CellCoeffs::resolve(self, env).residual_di(voltage, current)
    }
}

/// Environment-resolved coefficients of the implicit cell equation:
/// everything in `f(I) = Iph − I0·(exp((V + I·Rs)/(n·Vt)) − 1) − I` that
/// depends only on `(G, T)`, hoisted out of the per-iteration hot path.
///
/// The Newton/bisection solver evaluates the residual and its derivative
/// dozens of times per terminal-voltage solve; recomputing `Iph`, `I0` and
/// `n·Vt` (two transcendental-heavy functions) on every evaluation roughly
/// doubles the cost of the loop. Resolving them once per `(G, T)` is a pure
/// hoist: [`CellCoeffs::residual`] and [`CellCoeffs::residual_di`] evaluate
/// the exact expressions [`CellParams::current_residual`] and
/// [`CellParams::current_residual_di`] always evaluated (those methods now
/// delegate here), with identical operation order — so a solver holding
/// resolved coefficients is *bitwise identical* to one recomputing them each
/// iteration. The differential tests in `crates/pv/tests/` pin this down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCoeffs {
    /// Photocurrent `Iph(G, T)`, amps.
    iph: f64,
    /// Diode reverse-saturation current `I0(T)`, amps.
    i0: f64,
    /// Diode slope scale `n·Vt(T)`, volts.
    nvt: f64,
    /// Lumped series resistance, ohms.
    rs: f64,
}

impl CellCoeffs {
    /// Resolves the `(G, T)`-dependent coefficients for one environment.
    pub fn resolve(cell: &CellParams, env: CellEnv) -> Self {
        Self {
            iph: cell.photocurrent(env).get(),
            i0: cell.saturation_current(env.temperature).get(),
            nvt: cell.n_vt(env.temperature),
            rs: cell.series_resistance.get(),
        }
    }

    /// The resolved photocurrent `Iph(G, T)`.
    pub fn photocurrent(&self) -> Amps {
        Amps::new(self.iph)
    }

    /// The cell equation residual at a trial `(V, I)`; see
    /// [`CellParams::current_residual`].
    pub fn residual(&self, voltage: Volts, current: Amps) -> Amps {
        let arg = (voltage.get() + current.get() * self.rs) / self.nvt;
        // exp_m1 keeps precision near V ≈ 0 and avoids overflow surprises for
        // physical operating ranges (arg stays modest below ~1.5 V/cell).
        Amps::new(self.iph - self.i0 * arg.exp_m1() - current.get())
    }

    /// Derivative of [`Self::residual`] with respect to `I` (always
    /// negative); see [`CellParams::current_residual_di`].
    pub fn residual_di(&self, voltage: Volts, current: Amps) -> f64 {
        let arg = (voltage.get() + current.get() * self.rs) / self.nvt;
        -self.i0 * arg.exp() * self.rs / self.nvt - 1.0
    }

    /// Closed-form open-circuit voltage of a single cell under the resolved
    /// environment (`Voc,cell = n·Vt · ln(Iph/I0 + 1)`), zero in darkness.
    pub fn open_circuit_cell_voltage(&self) -> Volts {
        if self.iph <= 0.0 {
            return Volts::ZERO;
        }
        Volts::new(self.nvt * (self.iph / self.i0 + 1.0).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> CellParams {
        // A plausible polycrystalline cell: Isc ≈ 5.4 A, I0 ≈ 5 nA.
        CellParams::new(
            Amps::new(5.4),
            Amps::new(5.0e-9),
            1.3,
            Ohms::new(0.006),
            0.003,
        )
        .unwrap()
    }

    #[test]
    fn rejects_nonpositive_photocurrent() {
        let err = CellParams::new(Amps::ZERO, Amps::new(1e-9), 1.3, Ohms::ZERO, 0.0).unwrap_err();
        assert!(matches!(
            err,
            PvError::InvalidParameter {
                name: "photocurrent_stc",
                ..
            }
        ));
    }

    #[test]
    fn rejects_bad_ideality_and_resistance() {
        assert!(CellParams::new(Amps::new(5.0), Amps::new(1e-9), 0.1, Ohms::ZERO, 0.0).is_err());
        assert!(
            CellParams::new(Amps::new(5.0), Amps::new(1e-9), 1.3, Ohms::new(-0.1), 0.0).is_err()
        );
        assert!(CellParams::new(
            Amps::new(5.0),
            Amps::new(1e-9),
            1.3,
            Ohms::new(f64::NAN),
            0.0
        )
        .is_err());
    }

    #[test]
    fn photocurrent_scales_linearly_with_irradiance() {
        let cell = sample_cell();
        let full = cell.photocurrent(CellEnv::stc());
        let half = cell.photocurrent(CellEnv::new(Irradiance::new(500.0), STC_TEMPERATURE));
        assert!((half.get() * 2.0 - full.get()).abs() < 1e-12);
    }

    #[test]
    fn photocurrent_rises_slightly_with_temperature() {
        let cell = sample_cell();
        let hot = cell.photocurrent(CellEnv::new(STC_IRRADIANCE, Celsius::new(75.0)));
        let cold = cell.photocurrent(CellEnv::new(STC_IRRADIANCE, Celsius::new(0.0)));
        assert!(hot > cold);
        // Ki = 3 mA/°C → 75 °C span is 225 mA.
        assert!((hot.get() - cold.get() - 0.003 * 75.0).abs() < 1e-9);
    }

    #[test]
    fn darkness_means_zero_photocurrent() {
        let cell = sample_cell();
        assert_eq!(
            cell.photocurrent(CellEnv::dark(Celsius::new(25.0))),
            Amps::ZERO
        );
    }

    #[test]
    fn saturation_current_grows_steeply_with_temperature() {
        let cell = sample_cell();
        let i0_25 = cell.saturation_current(Celsius::new(25.0));
        let i0_75 = cell.saturation_current(Celsius::new(75.0));
        // The Arrhenius factor gives orders of magnitude over 50 °C.
        assert!(i0_75.get() / i0_25.get() > 50.0);
        let i0_0 = cell.saturation_current(Celsius::new(0.0));
        assert!(i0_0 < i0_25);
    }

    #[test]
    fn residual_is_monotonically_decreasing_in_current() {
        let cell = sample_cell();
        let env = CellEnv::stc();
        let v = Volts::new(0.5);
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let cur = Amps::new(i as f64 * 0.3);
            let r = cell.current_residual(env, v, cur).get();
            assert!(r < prev, "residual must decrease");
            prev = r;
        }
    }

    #[test]
    fn residual_derivative_is_negative() {
        let cell = sample_cell();
        let env = CellEnv::stc();
        for vi in 0..=12 {
            let v = Volts::new(vi as f64 * 0.05);
            for ii in 0..=5 {
                let i = Amps::new(ii as f64);
                assert!(cell.current_residual_di(env, v, i) < 0.0);
            }
        }
    }

    #[test]
    fn short_circuit_current_close_to_photocurrent() {
        // At V = 0 and I = Iph, the residual is small compared to Iph:
        // Isc ≈ Iph for a good cell (Section 2.2 of the paper).
        let cell = sample_cell();
        let env = CellEnv::stc();
        let iph = cell.photocurrent(env);
        let r = cell.current_residual(env, Volts::ZERO, iph).get();
        assert!(r.abs() < 0.05 * iph.get(), "residual {r}");
    }
}
