//! Sampled I-V / P-V curves and load-line intersections (Figures 4–7).

use crate::cell::CellEnv;
use crate::generator::PvGenerator;
use crate::units::{Amps, Ohms, Volts, Watts};

/// One sampled point of an I-V curve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IvPoint {
    /// Terminal voltage.
    pub voltage: Volts,
    /// Terminal current.
    pub current: Amps,
}

impl IvPoint {
    /// Output power at this point.
    pub fn power(&self) -> Watts {
        self.voltage * self.current
    }
}

/// A uniformly sampled current-voltage characteristic, from short circuit
/// (`V = 0`) to open circuit (`V = Voc`).
///
/// # Examples
///
/// ```
/// use pv::{PvModule, CellEnv, IvCurve};
///
/// let module = PvModule::bp3180n();
/// let curve = IvCurve::sample(&module, CellEnv::stc(), 100);
/// assert_eq!(curve.points().len(), 101);
/// assert!(curve.max_power().power().get() > 170.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IvCurve {
    points: Vec<IvPoint>,
}

impl IvCurve {
    /// Samples `segments + 1` evenly spaced points of the generator's I-V
    /// characteristic on `[0, Voc]`.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`.
    pub fn sample<G: PvGenerator + ?Sized>(generator: &G, env: CellEnv, segments: usize) -> Self {
        assert!(segments > 0, "need at least one segment");
        let voc = generator.open_circuit_voltage(env);
        let points = (0..=segments)
            .map(|step| {
                let v = Volts::new(voc.get() * step as f64 / segments as f64);
                let i = generator.current_at(env, v).unwrap_or(Amps::ZERO);
                IvPoint {
                    voltage: v,
                    current: i,
                }
            })
            .collect();
        Self { points }
    }

    /// The sampled points, ordered by increasing voltage.
    pub fn points(&self) -> &[IvPoint] {
        &self.points
    }

    /// Iterates over the sampled points.
    pub fn iter(&self) -> std::slice::Iter<'_, IvPoint> {
        self.points.iter()
    }

    /// The sampled point with the highest power (a coarse MPP; use
    /// [`crate::mpp::find_mpp`] for the refined oracle).
    pub fn max_power(&self) -> IvPoint {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.power().get().total_cmp(&b.power().get()))
            .unwrap_or_default()
    }
}

impl<'a> IntoIterator for &'a IvCurve {
    type Item = &'a IvPoint;
    type IntoIter = std::slice::Iter<'a, IvPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

/// Finds the operating point of a generator loaded by a pure resistance
/// (the intersection of the I-V curve with the load line `I = V / R`,
/// Figure 4 of the paper).
///
/// The intersection is unique because the PV current is non-increasing in
/// voltage while the load line is strictly increasing. Solved by bisection
/// on `[0, Voc]`.
pub fn resistive_operating_point<G: PvGenerator + ?Sized>(
    generator: &G,
    env: CellEnv,
    load: Ohms,
) -> IvPoint {
    let voc = generator.open_circuit_voltage(env);
    if voc <= Volts::ZERO || load.get() <= 0.0 {
        return IvPoint::default();
    }
    let mismatch = |v: f64| -> f64 {
        let i_pv = generator
            .current_at(env, Volts::new(v))
            .map(Amps::get)
            .unwrap_or(0.0);
        i_pv - v / load.get()
    };
    let (mut lo, mut hi) = (0.0, voc.get());
    for _ in 0..96 {
        let mid = 0.5 * (lo + hi);
        if mismatch(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let v = Volts::new(0.5 * (lo + hi));
    IvPoint {
        voltage: v,
        current: v / load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::PvModule;
    use crate::units::{Celsius, Irradiance};

    #[test]
    fn curve_spans_short_to_open_circuit() {
        let m = PvModule::bp3180n();
        let env = CellEnv::stc();
        let curve = IvCurve::sample(&m, env, 50);
        let first = curve.points().first().unwrap();
        let last = curve.points().last().unwrap();
        assert_eq!(first.voltage, Volts::ZERO);
        assert!((first.current.get() - 5.4).abs() < 0.1);
        assert!((last.voltage.get() - 44.8).abs() < 0.5);
        assert!(last.current.get().abs() < 0.01);
    }

    #[test]
    fn coarse_max_power_close_to_oracle() {
        let m = PvModule::bp3180n();
        let env = CellEnv::stc();
        let coarse = IvCurve::sample(&m, env, 400).max_power();
        let oracle = m.mpp(env);
        assert!((coarse.power().get() - oracle.power.get()).abs() < 0.5);
    }

    #[test]
    fn resistive_intersection_satisfies_both_curves() {
        let m = PvModule::bp3180n();
        let env = CellEnv::stc();
        let r = Ohms::new(7.25); // ≈ Vmp/Imp, near-matched load
        let op = resistive_operating_point(&m, env, r);
        // On the load line:
        assert!((op.current.get() - op.voltage.get() / r.get()).abs() < 1e-9);
        // On the PV curve:
        let i_pv = m.current_at(env, op.voltage).unwrap();
        assert!((i_pv.get() - op.current.get()).abs() < 1e-4);
        // Near-matched load lands near the MPP.
        assert!((op.power().get() - m.mpp(env).power.get()).abs() < 2.0);
    }

    #[test]
    fn mismatched_fixed_load_wastes_power_at_low_irradiance() {
        // Figure 1 of the paper: a load matched at 1000 W/m² extracts less
        // than half of the available power at 400 W/m².
        let m = PvModule::bp3180n();
        let stc = CellEnv::stc();
        let mpp = m.mpp(stc);
        let r = mpp.voltage / mpp.current;
        let dim = CellEnv::new(Irradiance::new(400.0), Celsius::new(25.0));
        let op = resistive_operating_point(&m, dim, r);
        let available = m.mpp(dim).power;
        let utilization = op.power() / available;
        assert!(
            utilization < 0.72,
            "fixed load should be badly matched: {utilization:.2}"
        );
    }

    #[test]
    fn degenerate_loads_yield_origin() {
        let m = PvModule::bp3180n();
        let op = resistive_operating_point(&m, CellEnv::dark(Celsius::new(25.0)), Ohms::new(10.0));
        assert_eq!(op, IvPoint::default());
        let op = resistive_operating_point(&m, CellEnv::stc(), Ohms::ZERO);
        assert_eq!(op, IvPoint::default());
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segment_sampling_panics() {
        let m = PvModule::bp3180n();
        let _ = IvCurve::sample(&m, CellEnv::stc(), 0);
    }

    #[test]
    fn curve_is_iterable() {
        let m = PvModule::bp3180n();
        let curve = IvCurve::sample(&m, CellEnv::stc(), 10);
        assert_eq!(curve.iter().count(), 11);
        assert_eq!((&curve).into_iter().count(), 11);
    }
}
