//! Maximum power point (MPP) search (Section 2.2 of the paper).
//!
//! For the single-diode model without shunt resistance, the P-V curve is
//! unimodal on `[0, Voc]`, so golden-section search converges to the global
//! maximum. This module provides the "oracle" MPP used to define tracking
//! efficiency; the SolarCore controller itself never calls it and instead
//! tracks the MPP with perturb-and-observe hardware steps.

use crate::cell::CellEnv;
use crate::module::PvModule;
use crate::solve::ModuleSolver;
use crate::units::{Amps, Volts, Watts};

/// Golden ratio conjugate used by the section search.
const INV_PHI: f64 = 0.618_033_988_749_894_8;

/// Voltage tolerance of the search, in volts.
const VOLTAGE_TOLERANCE: f64 = 1e-6;

/// The located maximum power point of a PV generator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MppPoint {
    /// Terminal voltage at the MPP.
    pub voltage: Volts,
    /// Output current at the MPP.
    pub current: Amps,
    /// Output power at the MPP (`voltage × current`).
    pub power: Watts,
}

impl MppPoint {
    /// An all-zero point, the MPP of a dark panel.
    pub const DARK: MppPoint = MppPoint {
        voltage: Volts::ZERO,
        current: Amps::ZERO,
        power: Watts::ZERO,
    };
}

/// Finds the maximum power point of `module` under `env` by golden-section
/// search over `[0, Voc]`.
///
/// Returns [`MppPoint::DARK`] when the panel produces no power (night).
pub fn find_mpp(module: &PvModule, env: CellEnv) -> MppPoint {
    find_mpp_with(&module.solver(env))
}

/// [`find_mpp`] against a pre-resolved [`ModuleSolver`]: the ~60 power
/// probes of the golden-section search share one coefficient resolution.
/// Bitwise identical to [`find_mpp`] (which delegates here).
pub fn find_mpp_with(solver: &ModuleSolver<'_>) -> MppPoint {
    let voc = solver.open_circuit_voltage();
    if voc <= Volts::ZERO {
        return MppPoint::DARK;
    }

    let power = |v: f64| -> f64 {
        solver
            .power_at(Volts::new(v))
            .map(Watts::get)
            .unwrap_or(0.0)
    };

    let (mut a, mut b) = (0.0, voc.get());
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut pc = power(c);
    let mut pd = power(d);
    while (b - a).abs() > VOLTAGE_TOLERANCE {
        if pc > pd {
            b = d;
            d = c;
            pd = pc;
            c = b - INV_PHI * (b - a);
            pc = power(c);
        } else {
            a = c;
            c = d;
            pc = pd;
            d = a + INV_PHI * (b - a);
            pd = power(d);
        }
    }
    let v = Volts::new(0.5 * (a + b));
    let i = solver.current_at(v).unwrap_or(Amps::ZERO);
    MppPoint {
        voltage: v,
        current: i,
        power: v * i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Celsius, Irradiance};

    #[test]
    fn mpp_power_dominates_sampled_curve() {
        let m = PvModule::bp3180n();
        let env = CellEnv::stc();
        let mpp = find_mpp(&m, env);
        let voc = m.open_circuit_voltage(env).get();
        for step in 1..200 {
            let v = Volts::new(voc * step as f64 / 200.0);
            let p = m.power_at(env, v).unwrap();
            assert!(
                p.get() <= mpp.power.get() + 1e-6,
                "P({v}) = {p} exceeds MPP {mpp:?}"
            );
        }
    }

    #[test]
    fn mpp_moves_up_with_irradiance() {
        // Figure 6: MPPs move upward with irradiance.
        let m = PvModule::bp3180n();
        let mut prev = 0.0;
        for g in [400.0, 600.0, 800.0, 1000.0] {
            let env = CellEnv::new(Irradiance::new(g), Celsius::new(25.0));
            let p = find_mpp(&m, env).power.get();
            assert!(p > prev, "power must grow with irradiance");
            prev = p;
        }
    }

    #[test]
    fn mpp_voltage_shifts_left_when_hot() {
        // Figure 7: MPP shifts left (lower V) at higher temperature.
        let m = PvModule::bp3180n();
        let cold = find_mpp(&m, CellEnv::new(Irradiance::new(1000.0), Celsius::new(0.0)));
        let hot = find_mpp(
            &m,
            CellEnv::new(Irradiance::new(1000.0), Celsius::new(75.0)),
        );
        assert!(hot.voltage < cold.voltage);
        assert!(hot.power < cold.power);
    }

    #[test]
    fn dark_panel_has_zero_mpp() {
        let m = PvModule::bp3180n();
        assert_eq!(
            find_mpp(&m, CellEnv::dark(Celsius::new(20.0))),
            MppPoint::DARK
        );
    }

    #[test]
    fn mpp_is_consistent_product() {
        let m = PvModule::bp3180n();
        let mpp = find_mpp(&m, CellEnv::stc());
        assert!((mpp.power.get() - mpp.voltage.get() * mpp.current.get()).abs() < 1e-9);
    }
}
