//! Core-availability constraints: the chip-side fault-injection seam.
//!
//! Chaos scenarios can throttle a core (thermal emergency: it may not run
//! faster than a given V/F level) or lose it outright (a dead or fenced-off
//! core). This module carries those constraints as an [`AvailabilityMask`]
//! the simulation engine re-applies each minute *after* the power manager
//! allocates — enforcement only ever slows or gates cores, so it can only
//! reduce chip power and never violates a budget the allocator proved.
//!
//! `archsim` deliberately knows nothing about fault *plans* (the `faults`
//! crate is not a dependency); the engine translates a plan's per-minute
//! core constraints into a mask.

use crate::chip::MultiCoreChip;
use crate::core::CoreId;
use crate::dvfs::VfLevel;
use crate::error::ArchError;

/// Per-core availability constraints for one enforcement instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityMask {
    /// Per-core speed ceiling: the core may not run at a ladder index
    /// smaller (= faster) than this level's.
    caps: Vec<Option<VfLevel>>,
    /// Per-core force-gate flags.
    lost: Vec<bool>,
}

impl AvailabilityMask {
    /// An unconstrained mask for a chip with `core_count` cores.
    pub fn none(core_count: usize) -> Self {
        Self {
            caps: vec![None; core_count],
            lost: vec![false; core_count],
        }
    }

    /// `true` when no core is constrained (enforcement is a no-op).
    pub fn is_unconstrained(&self) -> bool {
        self.caps.iter().all(Option::is_none) && !self.lost.iter().any(|&l| l)
    }

    /// Throttles `core` to ladder indices at or above `max_level_index`
    /// (`0` = fastest; indices beyond the ladder clamp to the slowest
    /// level). Constraints naming a core beyond the mask are ignored, so a
    /// scenario written for a larger chip degrades gracefully.
    pub fn throttle(&mut self, core: usize, max_level_index: usize) {
        if let Some(slot) = self.caps.get_mut(core) {
            let cap = VfLevel::all()
                .nth(max_level_index.min(VfLevel::COUNT - 1))
                .unwrap_or_else(VfLevel::lowest);
            // Keep the tightest (slowest) cap when several overlap.
            *slot = Some(match *slot {
                Some(existing) if existing.index() > cap.index() => existing,
                _ => cap,
            });
        }
    }

    /// Marks `core` as lost (force-gated). Out-of-range cores are ignored,
    /// matching [`throttle`](Self::throttle).
    pub fn lose(&mut self, core: usize) {
        if let Some(slot) = self.lost.get_mut(core) {
            *slot = true;
        }
    }

    /// Applies the mask to `chip`: lost cores are gated, throttled cores
    /// running above their cap are clamped down to it. Returns how many
    /// cores were actually modified.
    ///
    /// Enforcement is monotone — it only gates or slows — so calling it
    /// after a budget allocation cannot raise chip power above the budget.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCore`] only if the mask is wider than
    /// the chip (the engine builds masks with the chip's core count).
    pub fn enforce(&self, chip: &mut MultiCoreChip) -> Result<u32, ArchError> {
        let mut changed = 0;
        let n = self.caps.len().min(self.lost.len());
        for core in 0..n {
            let id = CoreId(core);
            if self.lost[core] {
                if !chip.core(id)?.is_gated() {
                    chip.gate(id, true)?;
                    changed += 1;
                }
                continue;
            }
            if let Some(cap) = self.caps[core] {
                let current = chip.core(id)?.level();
                if current.index() < cap.index() {
                    chip.set_level(id, cap)?;
                    changed += 1;
                }
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Mix;

    #[test]
    fn unconstrained_mask_is_a_no_op() {
        let mask = AvailabilityMask::none(8);
        assert!(mask.is_unconstrained());
        let mut chip = MultiCoreChip::new(&Mix::hm2());
        chip.set_all_levels(VfLevel::highest());
        let before = chip.vf_digest();
        assert_eq!(mask.enforce(&mut chip).unwrap(), 0);
        assert_eq!(chip.vf_digest(), before);
    }

    #[test]
    fn lost_cores_are_gated_once() {
        let mut mask = AvailabilityMask::none(8);
        mask.lose(2);
        assert!(!mask.is_unconstrained());
        let mut chip = MultiCoreChip::new(&Mix::hm2());
        assert_eq!(mask.enforce(&mut chip).unwrap(), 1);
        assert!(chip.core(CoreId(2)).unwrap().is_gated());
        // Idempotent: already-gated core is not re-counted.
        assert_eq!(mask.enforce(&mut chip).unwrap(), 0);
    }

    #[test]
    fn throttle_clamps_only_cores_above_the_cap() {
        let mut mask = AvailabilityMask::none(8);
        mask.throttle(0, 3);
        let mut chip = MultiCoreChip::new(&Mix::hm2());
        chip.set_all_levels(VfLevel::highest());
        assert_eq!(mask.enforce(&mut chip).unwrap(), 1);
        assert_eq!(chip.core(CoreId(0)).unwrap().level().index(), 3);
        // A core already slower than the cap is untouched.
        chip.set_level(CoreId(0), VfLevel::lowest()).unwrap();
        assert_eq!(mask.enforce(&mut chip).unwrap(), 0);
        assert_eq!(chip.core(CoreId(0)).unwrap().level(), VfLevel::lowest());
    }

    #[test]
    fn deep_indices_clamp_to_slowest_and_overlaps_keep_tightest() {
        let mut mask = AvailabilityMask::none(4);
        mask.throttle(1, 999);
        mask.throttle(1, 2); // looser than the existing cap: keeps slowest
        let mut chip = MultiCoreChip::new(&Mix::hm2());
        chip.set_all_levels(VfLevel::highest());
        mask.enforce(&mut chip).unwrap();
        assert_eq!(chip.core(CoreId(1)).unwrap().level(), VfLevel::lowest());
    }

    #[test]
    fn out_of_range_cores_are_ignored() {
        let mut mask = AvailabilityMask::none(4);
        mask.lose(17);
        mask.throttle(99, 1);
        assert!(mask.is_unconstrained());
    }

    #[test]
    fn enforcement_never_raises_power() {
        let mut mask = AvailabilityMask::none(8);
        mask.lose(0);
        mask.throttle(5, 4);
        let mut chip = MultiCoreChip::new(&Mix::hm2());
        chip.set_all_levels(VfLevel::highest());
        let before = chip.total_power();
        mask.enforce(&mut chip).unwrap();
        assert!(chip.total_power() <= before);
    }
}
