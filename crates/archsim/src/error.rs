//! Error types for the `archsim` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the multi-core substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ArchError {
    /// A V/F level index outside the supported table.
    InvalidLevel {
        /// The rejected index.
        index: usize,
    },
    /// A VID code that does not address a supported voltage.
    InvalidVid {
        /// The rejected 6-bit code.
        code: u8,
    },
    /// A core id outside the chip.
    InvalidCore {
        /// The rejected core index.
        index: usize,
        /// Number of cores on the chip.
        cores: usize,
    },
    /// A step was driven with the wrong number of phase multipliers.
    PhaseCountMismatch {
        /// Multipliers supplied.
        got: usize,
        /// Cores on the chip.
        expected: usize,
    },
    /// A non-positive or non-finite timestep.
    InvalidTimestep {
        /// The rejected dt in seconds.
        dt: f64,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidLevel { index } => write!(f, "invalid v/f level index {index}"),
            ArchError::InvalidVid { code } => write!(f, "vid code {code} addresses no v/f level"),
            ArchError::InvalidCore { index, cores } => {
                write!(f, "core {index} out of range (chip has {cores} cores)")
            }
            ArchError::PhaseCountMismatch { got, expected } => {
                write!(f, "got {got} phase multipliers for {expected} cores")
            }
            ArchError::InvalidTimestep { dt } => write!(f, "invalid timestep {dt} s"),
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert!(ArchError::InvalidLevel { index: 9 }
            .to_string()
            .contains('9'));
        assert!(ArchError::InvalidCore { index: 8, cores: 8 }
            .to_string()
            .contains("8 cores"));
        assert!(ArchError::PhaseCountMismatch {
            got: 4,
            expected: 8
        }
        .to_string()
        .contains('4'));
        assert!(ArchError::InvalidTimestep { dt: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(ArchError::InvalidVid { code: 63 }
            .to_string()
            .contains("63"));
    }
}
