//! Per-core DVFS operating points (Table 4 / Section 5 of the paper).
//!
//! Six voltage/frequency pairs, SpeedStep style: frequency from 2.5 GHz down
//! to 1.0 GHz in 300 MHz steps, voltage from 1.45 V down to 0.95 V in 0.1 V
//! steps. Voltage scales (approximately) linearly with frequency, matching
//! the paper's assumption (1).

use std::fmt;

use pv::units::{Hertz, Volts};

use crate::error::ArchError;

/// The (frequency GHz, voltage V) table, fastest first.
const VF_POINTS: [(f64, f64); 6] = [
    (2.5, 1.45),
    (2.2, 1.35),
    (1.9, 1.25),
    (1.6, 1.15),
    (1.3, 1.05),
    (1.0, 0.95),
];

/// A voltage/frequency operating point; index 0 is the fastest.
///
/// Ordering: a *larger* `VfLevel` in the `Ord` sense is a *faster* level, so
/// `VfLevel::highest() > VfLevel::lowest()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VfLevel(usize);

impl VfLevel {
    /// Number of supported operating points.
    pub const COUNT: usize = VF_POINTS.len();

    /// The fastest operating point (2.5 GHz / 1.45 V).
    pub const fn highest() -> Self {
        VfLevel(0)
    }

    /// The slowest operating point (1.0 GHz / 0.95 V).
    pub const fn lowest() -> Self {
        VfLevel(VF_POINTS.len() - 1)
    }

    /// Builds a level from a raw table index (0 = fastest).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidLevel`] if `index >= COUNT`.
    pub fn from_index(index: usize) -> Result<Self, ArchError> {
        if index < Self::COUNT {
            Ok(VfLevel(index))
        } else {
            Err(ArchError::InvalidLevel { index })
        }
    }

    /// All levels, fastest first.
    pub fn all() -> impl Iterator<Item = VfLevel> {
        (0..Self::COUNT).map(VfLevel)
    }

    /// Raw table index (0 = fastest).
    pub fn index(self) -> usize {
        self.0
    }

    /// Clock frequency at this level.
    pub fn frequency(self) -> Hertz {
        Hertz::from_ghz(VF_POINTS[self.0].0)
    }

    /// Supply voltage at this level.
    pub fn voltage(self) -> Volts {
        Volts::new(VF_POINTS[self.0].1)
    }

    /// One step faster, or `None` at the top.
    pub fn faster(self) -> Option<Self> {
        self.0.checked_sub(1).map(VfLevel)
    }

    /// One step slower, or `None` at the bottom.
    pub fn slower(self) -> Option<Self> {
        if self.0 + 1 < Self::COUNT {
            Some(VfLevel(self.0 + 1))
        } else {
            None
        }
    }

    /// `true` at the fastest level.
    pub fn is_highest(self) -> bool {
        self.0 == 0
    }

    /// `true` at the slowest level.
    pub fn is_lowest(self) -> bool {
        self.0 == Self::COUNT - 1
    }

    /// The 6-bit Voltage Identification Digital code communicated between
    /// controller and VRM (paper Section 4.1: Xeon-style VID, 0.8375–1.6 V
    /// in 25 mV steps): `code = (1.6 V − V) / 25 mV`.
    #[allow(clippy::cast_possible_truncation)] // codes span 0..=30 (0.8375–1.6 V)
    pub fn vid(self) -> u8 {
        ((1.6 - VF_POINTS[self.0].1) / 0.025).round() as u8
    }

    /// Decodes a VID back to the operating point it addresses.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidVid`] if the code does not map to one of
    /// the six supported voltages.
    pub fn from_vid(code: u8) -> Result<Self, ArchError> {
        VfLevel::all()
            .find(|l| l.vid() == code)
            .ok_or(ArchError::InvalidVid { code })
    }
}

impl PartialOrd for VfLevel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VfLevel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: smaller index = faster = "greater" level.
        other.0.cmp(&self.0)
    }
}

impl Default for VfLevel {
    /// Cores boot at the fastest level, like the paper's baseline CMP.
    fn default() -> Self {
        VfLevel::highest()
    }
}

impl fmt::Display for VfLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GHz/{:.2} V",
            self.frequency().to_ghz(),
            self.voltage().get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_levels_matching_table4() {
        assert_eq!(VfLevel::COUNT, 6);
        let top = VfLevel::highest();
        assert_eq!(top.frequency(), Hertz::from_ghz(2.5));
        assert_eq!(top.voltage(), Volts::new(1.45));
        let bottom = VfLevel::lowest();
        assert_eq!(bottom.frequency(), Hertz::from_ghz(1.0));
        assert_eq!(bottom.voltage(), Volts::new(0.95));
    }

    #[test]
    fn stepping_is_300mhz_and_100mv() {
        let mut level = VfLevel::highest();
        while let Some(next) = level.slower() {
            let df = level.frequency().to_ghz() - next.frequency().to_ghz();
            let dv = level.voltage().get() - next.voltage().get();
            assert!((df - 0.3).abs() < 1e-9);
            assert!((dv - 0.1).abs() < 1e-9);
            level = next;
        }
    }

    #[test]
    fn faster_slower_saturate() {
        assert_eq!(VfLevel::highest().faster(), None);
        assert_eq!(VfLevel::lowest().slower(), None);
        assert_eq!(VfLevel::highest().slower().unwrap().index(), 1);
        assert_eq!(VfLevel::lowest().faster().unwrap().index(), 4);
    }

    #[test]
    fn ordering_is_by_speed() {
        assert!(VfLevel::highest() > VfLevel::lowest());
        let l2 = VfLevel::from_index(2).unwrap();
        let l4 = VfLevel::from_index(4).unwrap();
        assert!(l2 > l4);
    }

    #[test]
    fn vid_roundtrip() {
        for level in VfLevel::all() {
            let code = level.vid();
            assert!(code < 64, "6-bit code");
            assert_eq!(VfLevel::from_vid(code).unwrap(), level);
        }
        assert!(VfLevel::from_vid(63).is_err());
    }

    #[test]
    fn vid_codes_match_25mv_grid() {
        assert_eq!(VfLevel::highest().vid(), 6); // (1.6 − 1.45)/0.025
        assert_eq!(VfLevel::lowest().vid(), 26); // (1.6 − 0.95)/0.025
    }

    #[test]
    fn from_index_bounds() {
        assert!(VfLevel::from_index(5).is_ok());
        assert!(VfLevel::from_index(6).is_err());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(VfLevel::highest().to_string(), "2.5 GHz/1.45 V");
    }
}
