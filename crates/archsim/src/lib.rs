//! Multi-core architecture performance/power substrate for SolarCore.
//!
//! The paper simulates an 8-core machine of Alpha-21264-class cores
//! (Table 4) with Wattch/CACTI power models, per-core DVFS in six V/F steps
//! (2.5 GHz/1.45 V down to 1.0 GHz/0.95 V, Intel SpeedStep style) and
//! per-core power gating (PCPG).
//!
//! A full cycle-accurate out-of-order pipeline cannot be driven here (no
//! SPEC2000 binaries or reference inputs are available), and the SolarCore
//! control algorithms only consume interval-level observables — per-core
//! instructions-per-second and watts. This crate therefore implements an
//! interval model with exactly those observables: dynamic power
//! `P = EPI·(V/V₀)²·IPC_eff(f)·f` (the paper's `P ∝ c·V³` under its linear
//! V–f assumption), temperature-dependent leakage, frequency-dependent
//! effective IPC with a memory-boundedness correction, and program-phase
//! multipliers from the [`workloads`] crate.
//!
//! # Quick start
//!
//! ```
//! use archsim::{MultiCoreChip, VfLevel};
//! use workloads::Mix;
//!
//! let mut chip = MultiCoreChip::new(&Mix::hm2());
//! chip.set_level(archsim::CoreId(0), VfLevel::lowest())?;
//! let phases = [1.0; 8];
//! chip.step(&phases, 60.0)?; // one minute
//! assert!(chip.total_power().get() > 0.0);
//! # Ok::<(), archsim::ArchError>(())
//! ```
//!
//! ## Panic policy
//!
//! Non-test code in this crate must not panic on recoverable conditions:
//! `unwrap`/`expect`/`panic!` are denied by the gate below and by
//! `cargo xtask lint`; justified sites carry an explicit allow + waiver.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![cfg_attr(test, allow(clippy::float_cmp))] // unit tests assert exact constructed values

pub mod availability;
pub mod chip;
pub mod core;
pub mod dvfs;
pub mod error;
pub mod power;

pub use crate::core::{Core, CoreId, CoreTelemetry};
pub use availability::AvailabilityMask;
pub use chip::MultiCoreChip;
pub use dvfs::VfLevel;
pub use error::ArchError;
