//! A single core: V/F state, gating, and accumulated work/energy.

use std::fmt;

use pv::units::{Celsius, Joules, Watts};
use workloads::BenchmarkSpec;

use crate::dvfs::VfLevel;
use crate::power;

/// Index of a core on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Interval observables the SolarCore controller reads from performance
/// counters and power sensors (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreTelemetry {
    /// Which core.
    pub id: CoreId,
    /// Current operating point.
    pub level: VfLevel,
    /// `true` if power-gated.
    pub gated: bool,
    /// Instantaneous instruction throughput (instructions/second).
    pub ips: f64,
    /// Instantaneous power draw.
    pub power: Watts,
    /// Effective IPC at the current frequency and phase.
    pub ipc: f64,
}

/// One simulated core running a pinned benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Core {
    id: CoreId,
    spec: BenchmarkSpec,
    level: VfLevel,
    gated: bool,
    phase: f64,
    retired_instructions: f64,
    energy: Joules,
}

impl Core {
    /// Creates a core at the top V/F level, ungated, with unit phase.
    pub fn new(id: CoreId, spec: BenchmarkSpec) -> Self {
        Self {
            id,
            spec,
            level: VfLevel::highest(),
            gated: false,
            phase: 1.0,
            retired_instructions: 0.0,
            energy: Joules::ZERO,
        }
    }

    /// The core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The benchmark pinned to this core.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// Current operating point.
    pub fn level(&self) -> VfLevel {
        self.level
    }

    /// Sets the operating point (the VRM VID write).
    pub fn set_level(&mut self, level: VfLevel) {
        self.level = level;
    }

    /// `true` if the core is power-gated (PCPG).
    pub fn is_gated(&self) -> bool {
        self.gated
    }

    /// Gates or ungates the core.
    pub fn set_gated(&mut self, gated: bool) {
        self.gated = gated;
    }

    /// The most recent phase multiplier applied by [`Core::step`].
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Total instructions retired since construction.
    pub fn retired_instructions(&self) -> f64 {
        self.retired_instructions
    }

    /// Total energy consumed since construction.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Instantaneous power at the current state (gated ⇒ zero), at the
    /// machine ambient temperature.
    pub fn current_power(&self) -> Watts {
        self.power_at(self.level, self.phase)
    }

    /// Instantaneous throughput at the current state (gated ⇒ zero).
    pub fn current_ips(&self) -> f64 {
        if self.gated {
            0.0
        } else {
            power::core_ips(&self.spec, self.level, self.phase)
        }
    }

    /// What-if power at another level with a phase multiplier — used by the
    /// load-tuning heuristics to predict the effect of a V/F step without
    /// committing it. Gating is ignored (the question is "if it ran").
    pub fn power_at(&self, level: VfLevel, phase: f64) -> Watts {
        if self.gated {
            return Watts::ZERO;
        }
        power::core_power(&self.spec, level, phase, power::MACHINE_AMBIENT).0
    }

    /// What-if power at a level ignoring gating — the core's *capacity*
    /// contribution ("how much could this core absorb if it ran"). Used to
    /// compute the achievable chip budget.
    pub fn potential_power_at(&self, level: VfLevel, phase: f64) -> Watts {
        power::core_power(&self.spec, level, phase, power::MACHINE_AMBIENT).0
    }

    /// What-if throughput at another level.
    pub fn ips_at(&self, level: VfLevel, phase: f64) -> f64 {
        if self.gated {
            return 0.0;
        }
        power::core_ips(&self.spec, level, phase)
    }

    /// Die temperature at the current operating state.
    pub fn die_temperature(&self) -> Celsius {
        if self.gated {
            power::MACHINE_AMBIENT
        } else {
            power::core_power(&self.spec, self.level, self.phase, power::MACHINE_AMBIENT).1
        }
    }

    /// Advances the core by `dt` seconds under phase multiplier `phase`,
    /// accumulating retired instructions and energy.
    pub fn step(&mut self, phase: f64, dt: f64) {
        self.phase = phase;
        if self.gated {
            return;
        }
        let ips = power::core_ips(&self.spec, self.level, phase);
        let p = self.power_at(self.level, phase);
        self.retired_instructions += ips * dt;
        self.energy += Joules::new(p.get() * dt);
    }

    /// Snapshot of the controller-visible observables.
    pub fn telemetry(&self) -> CoreTelemetry {
        let ips = self.current_ips();
        CoreTelemetry {
            id: self.id,
            level: self.level,
            gated: self.gated,
            ips,
            power: self.current_power(),
            ipc: ips / self.level.frequency().get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec2000;

    fn core() -> Core {
        Core::new(CoreId(3), spec2000::gcc())
    }

    #[test]
    fn new_core_boots_fast_and_ungated() {
        let c = core();
        assert_eq!(c.level(), VfLevel::highest());
        assert!(!c.is_gated());
        assert_eq!(c.retired_instructions(), 0.0);
        assert_eq!(c.energy(), Joules::ZERO);
    }

    #[test]
    fn step_accumulates_work_and_energy() {
        let mut c = core();
        c.step(1.0, 60.0);
        let instr_1min = c.retired_instructions();
        assert!(instr_1min > 1e10, "gcc at 2.5 GHz retires > 10 G instr/min");
        assert!(c.energy().get() > 100.0);
        c.step(1.0, 60.0);
        assert!((c.retired_instructions() - 2.0 * instr_1min).abs() < 1e-6 * instr_1min);
    }

    #[test]
    fn gated_core_is_dark_silicon() {
        let mut c = core();
        c.set_gated(true);
        c.step(1.0, 60.0);
        assert_eq!(c.retired_instructions(), 0.0);
        assert_eq!(c.energy(), Joules::ZERO);
        assert_eq!(c.current_power(), Watts::ZERO);
        assert_eq!(c.current_ips(), 0.0);
        assert_eq!(c.die_temperature(), power::MACHINE_AMBIENT);
    }

    #[test]
    fn slower_level_cuts_power_more_than_throughput() {
        let mut c = core();
        let p_hi = c.current_power().get();
        let t_hi = c.current_ips();
        c.set_level(VfLevel::lowest());
        let p_lo = c.current_power().get();
        let t_lo = c.current_ips();
        assert!(
            p_lo / p_hi < t_lo / t_hi,
            "DVFS must be super-linear in power"
        );
    }

    #[test]
    fn what_if_queries_do_not_mutate() {
        let c = core();
        let before = c.clone();
        let _ = c.power_at(VfLevel::lowest(), 1.2);
        let _ = c.ips_at(VfLevel::lowest(), 1.2);
        assert_eq!(c, before);
    }

    #[test]
    fn telemetry_reflects_state() {
        let mut c = core();
        c.set_level(VfLevel::from_index(2).unwrap());
        c.step(1.1, 1.0);
        let t = c.telemetry();
        assert_eq!(t.id, CoreId(3));
        assert_eq!(t.level.index(), 2);
        assert!(!t.gated);
        assert!(t.ips > 0.0);
        assert!(t.power.get() > 0.0);
        assert!((t.ipc - t.ips / t.level.frequency().get()).abs() < 1e-12);
    }

    #[test]
    fn die_temperature_rises_with_load() {
        let mut hot = Core::new(CoreId(0), spec2000::art());
        hot.step(1.4, 1.0);
        let mut cool = Core::new(CoreId(1), spec2000::swim());
        cool.set_level(VfLevel::lowest());
        cool.step(0.8, 1.0);
        assert!(hot.die_temperature() > cool.die_temperature());
    }
}
