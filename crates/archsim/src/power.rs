//! Core-level power model (the Wattch/CACTI substitute).
//!
//! A benchmark's Table 5 EPI is the *measured total* energy per instruction
//! at the nominal operating point, so per-core power at top V/F is
//! `P_top = EPI·IPC·f_nom`. Internally that budget splits three ways, as in
//! Wattch/CACTI-era breakdowns:
//!
//! * **switching (dynamic) power**, which follows the paper's model — with
//!   voltage linear in frequency, `P_dyn ≈ c·V³` (we scale the top-level
//!   residual by `(V/V₀)²·IPS(f)/IPS₀`);
//! * **leakage**, `∝ V·exp(k·T)` with die temperature linear in core power
//!   (first-order thermal resistance), solved by fixed-point iteration;
//! * **uncore power** (the core's private 2 MB L2, clock distribution,
//!   memory interface — Table 4 hardware), which does not scale with the
//!   core's V/F setting.
//!
//! Power-gated cores dissipate nothing, including their uncore (PCPG cuts
//! the whole power domain).

use pv::units::{Celsius, Watts};
use workloads::BenchmarkSpec;

use crate::dvfs::VfLevel;

/// Nominal leakage per core at top voltage and 45 °C die temperature, in
/// watts (≈20 % of a core's peak power — the paper's 90 nm node, where
/// leakage is a first-class budget item in Wattch/CACTI models).
const LEAKAGE_NOMINAL_W: f64 = 3.2;

/// Die temperature the nominal leakage is referenced to, °C.
const LEAKAGE_REF_TEMP: f64 = 45.0;

/// Exponential temperature sensitivity of sub-threshold leakage, 1/°C
/// (leakage roughly doubles every ~40 °C).
const LEAKAGE_TEMP_COEFF: f64 = 0.017;

/// Junction-to-ambient thermal resistance per core, °C/W.
const THETA_JA: f64 = 1.8;

/// Machine-room ambient temperature around the chip, °C.
pub const MACHINE_AMBIENT: Celsius = Celsius::new(25.0);

/// Per-core power that does not scale with the core's V/F point: the
/// private 2 MB L2, clock distribution and memory interface (Table 4).
/// Falls to zero only when the core's whole domain is power-gated.
pub const UNCORE_W: f64 = 4.0;

/// The switching-power budget at the top V/F level: total nominal power
/// (`EPI·IPC·f_nom`) minus the reference leakage and uncore shares.
fn dynamic_power_top(spec: &BenchmarkSpec) -> f64 {
    let f_nom = VfLevel::highest().frequency().get();
    let total = spec.epi_nj * 1e-9 * spec.ipc * f_nom;
    (total - LEAKAGE_NOMINAL_W - UNCORE_W).max(0.5)
}

/// Per-core switching (dynamic) power for a benchmark at a V/F level with a
/// phase multiplier (1.0 = the program's average phase):
/// `P_dyn = P_dyn_top · (V/V₀)² · IPS(f)/IPS₀ · phase`.
pub fn dynamic_power(spec: &BenchmarkSpec, level: VfLevel, phase: f64) -> Watts {
    let v = level.voltage().get();
    let v0 = VfLevel::highest().voltage().get();
    let f = level.frequency().get();
    let f_nom = VfLevel::highest().frequency().get();
    let ips_ratio = spec.ips_at(f, f_nom) / spec.ips_at(f_nom, f_nom);
    Watts::new(dynamic_power_top(spec) * (v / v0).powi(2) * ips_ratio * phase.max(0.0))
}

/// Per-core leakage power at a supply voltage and die temperature.
pub fn leakage_power(level: VfLevel, die_temp: Celsius) -> Watts {
    let v = level.voltage().get();
    let v0 = VfLevel::highest().voltage().get();
    let scale = (LEAKAGE_TEMP_COEFF * (die_temp.get() - LEAKAGE_REF_TEMP)).exp();
    Watts::new(LEAKAGE_NOMINAL_W * (v / v0) * scale)
}

/// Total per-core power (dynamic + leakage) with the die temperature solved
/// self-consistently: `T_die = T_amb + θ_ja · P_total(T_die)`.
///
/// Returns `(power, die_temperature)`. Power-gated cores should not call
/// this — gating is handled by [`crate::core::Core`].
pub fn core_power(
    spec: &BenchmarkSpec,
    level: VfLevel,
    phase: f64,
    ambient: Celsius,
) -> (Watts, Celsius) {
    let p_dyn = dynamic_power(spec, level, phase);
    let p_uncore = Watts::new(UNCORE_W);
    let mut die = Celsius::new(ambient.get() + THETA_JA * (p_dyn.get() + UNCORE_W));
    let mut total = p_dyn + p_uncore;
    // The leakage/temperature coupling is weak (≤ ~25 % of power), so a few
    // fixed-point sweeps converge far below solver tolerance.
    for _ in 0..4 {
        let p_leak = leakage_power(level, die);
        total = p_dyn + p_uncore + p_leak;
        die = Celsius::new(ambient.get() + THETA_JA * total.get());
    }
    (total, die)
}

/// Per-core instruction throughput (IPS) at a level and phase multiplier.
pub fn core_ips(spec: &BenchmarkSpec, level: VfLevel, phase: f64) -> f64 {
    let f_nom = VfLevel::highest().frequency().get();
    spec.ips_at(level.frequency().get(), f_nom) * phase.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec2000;

    #[test]
    fn dynamic_power_scales_roughly_cubically() {
        // Between the top and bottom levels, P_dyn should shrink by about
        // (V_lo/V_hi)²·(f_lo/f_hi) ≈ 0.43·0.4 ≈ 0.17 (modulo the IPC
        // correction for memory-bound codes).
        let gzip = spec2000::gzip(); // nearly compute bound
        let hi = dynamic_power(&gzip, VfLevel::highest(), 1.0).get();
        let lo = dynamic_power(&gzip, VfLevel::lowest(), 1.0).get();
        let ratio = lo / hi;
        assert!((0.14..=0.22).contains(&ratio), "ratio {ratio:.3}");
    }

    #[test]
    fn dynamic_power_monotone_in_level() {
        for spec in spec2000::all() {
            let mut prev = f64::INFINITY;
            for level in VfLevel::all() {
                let p = dynamic_power(&spec, level, 1.0).get();
                assert!(p < prev, "{}: power must fall with level", spec.name);
                prev = p;
            }
        }
    }

    #[test]
    fn phase_multiplier_scales_power_linearly() {
        let art = spec2000::art();
        let base = dynamic_power(&art, VfLevel::highest(), 1.0).get();
        let up = dynamic_power(&art, VfLevel::highest(), 1.3).get();
        assert!((up / base - 1.3).abs() < 1e-9);
        assert_eq!(dynamic_power(&art, VfLevel::highest(), -1.0).get(), 0.0);
    }

    #[test]
    fn leakage_grows_with_temperature_and_voltage() {
        let cool = leakage_power(VfLevel::highest(), Celsius::new(45.0));
        let hot = leakage_power(VfLevel::highest(), Celsius::new(85.0));
        assert!(hot.get() > 1.7 * cool.get());
        let lo_v = leakage_power(VfLevel::lowest(), Celsius::new(45.0));
        assert!(lo_v < cool);
        assert!((cool.get() - LEAKAGE_NOMINAL_W).abs() < 1e-9);
    }

    #[test]
    fn core_power_converges_and_heats_the_die() {
        let art = spec2000::art();
        let (p, die) = core_power(&art, VfLevel::highest(), 1.0, MACHINE_AMBIENT);
        assert!(p > dynamic_power(&art, VfLevel::highest(), 1.0));
        assert!(die.get() > MACHINE_AMBIENT.get() + 15.0);
        // Self-consistency: T = amb + θ·P within tolerance.
        assert!((die.get() - (MACHINE_AMBIENT.get() + THETA_JA * p.get())).abs() < 0.1);
    }

    #[test]
    fn chip_peak_power_matches_paper_scale() {
        // 8 × art at top V/F must land in the ~110–170 W window the paper's
        // budget traces show, and close to the EPI-implied total
        // (EPI·IPC·f = 15.75 W/core; the self-consistent hot leakage adds
        // a little on top of the 45 °C reference the split uses).
        let art = spec2000::art();
        let (p, _) = core_power(&art, VfLevel::highest(), 1.0, MACHINE_AMBIENT);
        let chip = 8.0 * p.get();
        assert!((110.0..=170.0).contains(&chip), "chip peak {chip:.0} W");
        let epi_implied = 8.0 * art.epi_nj * 1e-9 * art.ipc * 2.5e9;
        assert!(
            (chip - epi_implied).abs() / epi_implied < 0.15,
            "chip {chip:.0} vs EPI-implied {epi_implied:.0}"
        );
    }

    #[test]
    fn energy_per_instruction_is_only_mildly_better_at_low_vf() {
        // The uncore + leakage floor keeps the DVFS energy advantage in the
        // ~1.1–1.4× range the paper's battery comparison implies, rather
        // than the raw (V₀/V)² ≈ 1.6×.
        let art = spec2000::art();
        let nj = |level: VfLevel| {
            let (p, _) = core_power(&art, level, 1.0, MACHINE_AMBIENT);
            p.get() / core_ips(&art, level, 1.0) * 1e9
        };
        let top = nj(VfLevel::highest());
        let mid = nj(VfLevel::from_index(3).unwrap());
        let ratio = top / mid;
        assert!((1.02..=1.45).contains(&ratio), "nJ ratio {ratio:.3}");
    }

    #[test]
    fn uncore_power_is_constant_across_levels() {
        // The uncore share does not scale with V/F; only dynamic + leakage
        // move. Verified indirectly: power at the bottom level stays above
        // the uncore floor.
        let swim = spec2000::swim();
        let (p, _) = core_power(&swim, VfLevel::lowest(), 1.0, MACHINE_AMBIENT);
        assert!(p.get() > UNCORE_W);
    }

    #[test]
    fn throughput_at_level_uses_effective_ipc() {
        let mcf = spec2000::mcf();
        let hi = core_ips(&mcf, VfLevel::highest(), 1.0);
        let lo = core_ips(&mcf, VfLevel::lowest(), 1.0);
        // Memory bound: throughput falls much less than 2.5×.
        assert!(hi / lo < 1.8, "mcf throughput ratio {:.2}", hi / lo);
    }
}
