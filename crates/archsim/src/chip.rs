//! The multi-core chip: a vector of cores with chip-level aggregates.

use pv::units::{Joules, Watts};
use workloads::Mix;

use crate::core::{Core, CoreId, CoreTelemetry};
use crate::dvfs::VfLevel;
use crate::error::ArchError;

/// An N-core chip with per-core DVFS and power gating, one benchmark pinned
/// per core (the paper's multi-programmed setup).
///
/// # Examples
///
/// ```
/// use archsim::{MultiCoreChip, CoreId, VfLevel};
/// use workloads::Mix;
///
/// let mut chip = MultiCoreChip::new(&Mix::m2());
/// assert_eq!(chip.core_count(), 8);
/// chip.set_level(CoreId(2), VfLevel::lowest())?;
/// chip.gate(CoreId(7), true)?;
/// assert!(chip.total_power().get() > 0.0);
/// # Ok::<(), archsim::ArchError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreChip {
    cores: Vec<Core>,
}

impl MultiCoreChip {
    /// Builds a chip from a workload mix (one core per program, all at the
    /// top V/F level).
    pub fn new(mix: &Mix) -> Self {
        let cores = mix
            .benchmarks()
            .iter()
            .enumerate()
            .map(|(i, spec)| Core::new(CoreId(i), *spec))
            .collect();
        Self { cores }
    }

    /// Number of cores on the chip.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Immutable access to all cores.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Immutable access to one core.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCore`] for an out-of-range id.
    pub fn core(&self, id: CoreId) -> Result<&Core, ArchError> {
        self.cores.get(id.0).ok_or(ArchError::InvalidCore {
            index: id.0,
            cores: self.cores.len(),
        })
    }

    /// Sets one core's V/F level.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCore`] for an out-of-range id.
    pub fn set_level(&mut self, id: CoreId, level: VfLevel) -> Result<(), ArchError> {
        self.core_mut(id)?.set_level(level);
        Ok(())
    }

    /// Gates or ungates one core.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCore`] for an out-of-range id.
    pub fn gate(&mut self, id: CoreId, gated: bool) -> Result<(), ArchError> {
        self.core_mut(id)?.set_gated(gated);
        Ok(())
    }

    /// Applies the same level to every core.
    pub fn set_all_levels(&mut self, level: VfLevel) {
        for core in &mut self.cores {
            core.set_level(level);
        }
    }

    /// Instantaneous chip power (sum over cores; gated cores contribute 0).
    pub fn total_power(&self) -> Watts {
        self.cores.iter().map(Core::current_power).sum()
    }

    /// The chip's power *capacity* under current phases: what it would draw
    /// with every core ungated at the top V/F level. This is the most load
    /// the adaptation can present to the panel.
    pub fn power_capacity(&self) -> Watts {
        self.cores
            .iter()
            .map(|c| c.potential_power_at(crate::dvfs::VfLevel::highest(), c.phase()))
            .sum()
    }

    /// A canonical digest of the per-core V/F state: FNV-1a over each
    /// core's level index and gate flag, in core order. Two chips with the
    /// same digest present the same operating point, so the determinism
    /// harness can compare per-core V/F across runs without serializing
    /// every core.
    pub fn vf_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for core in &self.cores {
            for byte in (core.level().index() as u64)
                .to_le_bytes()
                .into_iter()
                .chain([u8::from(core.is_gated())])
            {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        }
        hash
    }

    /// Instantaneous chip throughput in instructions/second.
    pub fn total_ips(&self) -> f64 {
        self.cores.iter().map(Core::current_ips).sum()
    }

    /// Total instructions retired since construction.
    pub fn total_instructions(&self) -> f64 {
        self.cores.iter().map(Core::retired_instructions).sum()
    }

    /// Total energy consumed since construction.
    pub fn total_energy(&self) -> Joules {
        self.cores.iter().map(Core::energy).sum()
    }

    /// Advances every core by `dt` seconds with per-core phase multipliers.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::PhaseCountMismatch`] if `phases.len()` differs
    /// from the core count, and [`ArchError::InvalidTimestep`] for a
    /// non-positive or non-finite `dt`.
    pub fn step(&mut self, phases: &[f64], dt: f64) -> Result<(), ArchError> {
        if phases.len() != self.cores.len() {
            return Err(ArchError::PhaseCountMismatch {
                got: phases.len(),
                expected: self.cores.len(),
            });
        }
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(ArchError::InvalidTimestep { dt });
        }
        for (core, &phase) in self.cores.iter_mut().zip(phases) {
            core.step(phase, dt);
        }
        Ok(())
    }

    /// Controller-visible snapshot of every core.
    pub fn telemetry(&self) -> Vec<CoreTelemetry> {
        self.cores.iter().map(Core::telemetry).collect()
    }

    /// Chip power if core `id` moved to `level` while everything else stayed
    /// put — the what-if the load-tuning heuristics rely on.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCore`] for an out-of-range id.
    pub fn power_if(&self, id: CoreId, level: VfLevel) -> Result<Watts, ArchError> {
        let target = self.core(id)?;
        let others: Watts = self
            .cores
            .iter()
            .filter(|c| c.id() != id)
            .map(Core::current_power)
            .sum();
        Ok(others + target.power_at(level, target.phase()))
    }

    fn core_mut(&mut self, id: CoreId) -> Result<&mut Core, ArchError> {
        let cores = self.cores.len();
        self.cores
            .get_mut(id.0)
            .ok_or(ArchError::InvalidCore { index: id.0, cores })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_has_one_core_per_program() {
        let chip = MultiCoreChip::new(&Mix::hm2());
        assert_eq!(chip.core_count(), 8);
        assert_eq!(chip.cores()[2].spec().name, "art");
    }

    #[test]
    fn invalid_core_ids_error() {
        let mut chip = MultiCoreChip::new(&Mix::h1());
        assert!(chip.core(CoreId(8)).is_err());
        assert!(chip.set_level(CoreId(9), VfLevel::lowest()).is_err());
        assert!(chip.gate(CoreId(100), true).is_err());
        assert!(chip.power_if(CoreId(8), VfLevel::lowest()).is_err());
    }

    #[test]
    fn step_validations() {
        let mut chip = MultiCoreChip::new(&Mix::h1());
        assert!(matches!(
            chip.step(&[1.0; 4], 60.0),
            Err(ArchError::PhaseCountMismatch {
                got: 4,
                expected: 8
            })
        ));
        assert!(chip.step(&[1.0; 8], 0.0).is_err());
        assert!(chip.step(&[1.0; 8], f64::NAN).is_err());
        assert!(chip.step(&[1.0; 8], 60.0).is_ok());
    }

    #[test]
    fn aggregates_sum_over_cores() {
        let mut chip = MultiCoreChip::new(&Mix::l1());
        chip.step(&[1.0; 8], 60.0).unwrap();
        let per_core = chip.cores()[0].current_power().get();
        assert!((chip.total_power().get() - 8.0 * per_core).abs() < 1e-9);
        assert!(chip.total_instructions() > 0.0);
        assert!(chip.total_energy().get() > 0.0);
    }

    #[test]
    fn gating_reduces_power_and_throughput() {
        let mut chip = MultiCoreChip::new(&Mix::m1());
        let p_full = chip.total_power();
        let t_full = chip.total_ips();
        chip.gate(CoreId(0), true).unwrap();
        chip.gate(CoreId(1), true).unwrap();
        assert!((chip.total_power().get() - 0.75 * p_full.get()).abs() < 1e-9);
        assert!((chip.total_ips() - 0.75 * t_full).abs() < 1e-3);
    }

    #[test]
    fn capacity_ignores_gating_and_levels() {
        let mut chip = MultiCoreChip::new(&Mix::h2());
        let cap_full = chip.power_capacity();
        // Capacity equals demand when everything runs at top speed.
        assert!((cap_full.get() - chip.total_power().get()).abs() < 1e-9);
        chip.set_all_levels(VfLevel::lowest());
        chip.gate(CoreId(0), true).unwrap();
        // Slowing down or gating does not change what the chip *could* draw.
        assert!((chip.power_capacity().get() - cap_full.get()).abs() < 1e-9);
        assert!(chip.total_power() < cap_full);
    }

    #[test]
    fn power_if_predicts_actual_transition() {
        let mut chip = MultiCoreChip::new(&Mix::m2());
        let predicted = chip.power_if(CoreId(1), VfLevel::lowest()).unwrap();
        chip.set_level(CoreId(1), VfLevel::lowest()).unwrap();
        let actual = chip.total_power();
        assert!((predicted.get() - actual.get()).abs() < 1e-9);
    }

    #[test]
    fn set_all_levels_applies_uniformly() {
        let mut chip = MultiCoreChip::new(&Mix::h2());
        chip.set_all_levels(VfLevel::lowest());
        assert!(chip.cores().iter().all(|c| c.level() == VfLevel::lowest()));
    }

    #[test]
    fn telemetry_has_an_entry_per_core() {
        let chip = MultiCoreChip::new(&Mix::ml2());
        let t = chip.telemetry();
        assert_eq!(t.len(), 8);
        assert_eq!(t[5].id, CoreId(5));
    }
}
