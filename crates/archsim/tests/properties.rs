//! Property-based tests of the multi-core substrate.

use proptest::prelude::*;

use archsim::{CoreId, MultiCoreChip, VfLevel};
use workloads::Mix;

fn arb_levels() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..VfLevel::COUNT, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chip power and throughput both increase when any single core takes a
    /// faster level, for any starting configuration.
    #[test]
    fn faster_level_raises_power_and_throughput(
        levels in arb_levels(),
        core in 0usize..8,
        mix_idx in 0usize..10,
    ) {
        let mix = Mix::all().swap_remove(mix_idx);
        let mut chip = MultiCoreChip::new(&mix);
        for (i, &l) in levels.iter().enumerate() {
            chip.set_level(CoreId(i), VfLevel::from_index(l).unwrap()).unwrap();
        }
        let id = CoreId(core);
        let level = chip.core(id).unwrap().level();
        prop_assume!(level.faster().is_some());
        let p0 = chip.total_power();
        let t0 = chip.total_ips();
        chip.set_level(id, level.faster().unwrap()).unwrap();
        prop_assert!(chip.total_power() > p0);
        prop_assert!(chip.total_ips() > t0);
    }

    /// Stepping is energy-conserving bookkeeping: total energy equals the
    /// integral of the per-minute power draw.
    #[test]
    fn energy_equals_power_times_time(
        levels in arb_levels(),
        phases in proptest::collection::vec(0.6..1.4_f64, 8),
        minutes in 1usize..30,
    ) {
        let mut chip = MultiCoreChip::new(&Mix::hm2());
        for (i, &l) in levels.iter().enumerate() {
            chip.set_level(CoreId(i), VfLevel::from_index(l).unwrap()).unwrap();
        }
        let mut expected = 0.0;
        for _ in 0..minutes {
            chip.step(&phases, 60.0).unwrap();
            expected += chip.total_power().get() * 60.0;
        }
        prop_assert!((chip.total_energy().get() - expected).abs() < 1e-6 * expected.max(1.0));
    }

    /// Gating any subset of cores reduces power to exactly the sum of the
    /// running cores; ungating restores it.
    #[test]
    fn gating_is_exact_and_reversible(mask in 0u8..=u8::MAX) {
        let mut chip = MultiCoreChip::new(&Mix::m2());
        let p_full = chip.total_power();
        for i in 0..8 {
            if mask & (1 << i) != 0 {
                chip.gate(CoreId(i), true).unwrap();
            }
        }
        let running: f64 = chip
            .cores()
            .iter()
            .filter(|c| !c.is_gated())
            .map(|c| c.current_power().get())
            .sum();
        prop_assert!((chip.total_power().get() - running).abs() < 1e-9);
        for i in 0..8 {
            chip.gate(CoreId(i), false).unwrap();
        }
        prop_assert!((chip.total_power().get() - p_full.get()).abs() < 1e-9);
    }

    /// The VID bus is a faithful channel for every level.
    #[test]
    fn vid_roundtrip_for_all_levels(idx in 0usize..VfLevel::COUNT) {
        let level = VfLevel::from_index(idx).unwrap();
        prop_assert_eq!(VfLevel::from_vid(level.vid()).unwrap(), level);
    }
}
