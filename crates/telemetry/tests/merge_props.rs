//! Property tests: counter/histogram merge is associative and
//! order-independent (the contract that makes sharded-sweep metric
//! aggregation deterministic regardless of shard completion order).

use proptest::prelude::*;
use telemetry::{Counter, Histogram};

/// Bucket layout used throughout; mirrors the Newton-iteration buckets.
const BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

fn hist_from(samples: &[u64]) -> Histogram {
    let h = Histogram::new("h", BOUNDS);
    for &s in samples {
        h.record(s);
    }
    h
}

fn assert_hist_eq(a: &Histogram, b: &Histogram) {
    assert_eq!(a.snapshot(0), b.snapshot(0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counter_merge_is_associative_and_commutative(
        xs in proptest::collection::vec(0u64..1_000_000, 1..8),
    ) {
        // ((c0 + c1) + c2) + ... == fold in reverse order
        let fwd = Counter::new("c");
        for &x in &xs {
            let part = Counter::new("c");
            part.add(x);
            fwd.merge(&part);
        }
        let rev = Counter::new("c");
        for &x in xs.iter().rev() {
            let part = Counter::new("c");
            part.add(x);
            rev.merge(&part);
        }
        prop_assert_eq!(fwd.get(), rev.get());
        prop_assert_eq!(fwd.get(), xs.iter().sum::<u64>());
    }

    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u64..300, 0..20),
        b in proptest::collection::vec(0u64..300, 0..20),
        c in proptest::collection::vec(0u64..300, 0..20),
    ) {
        // (a ⊕ b) ⊕ c
        let left = hist_from(&a);
        let hb = hist_from(&b);
        left.merge(&hb).unwrap();
        let hc = hist_from(&c);
        left.merge(&hc).unwrap();

        // a ⊕ (b ⊕ c)
        let right = hist_from(&a);
        let bc = hist_from(&b);
        bc.merge(&hist_from(&c)).unwrap();
        right.merge(&bc).unwrap();

        assert_hist_eq(&left, &right);
    }

    #[test]
    fn histogram_merge_is_order_independent(
        a in proptest::collection::vec(0u64..300, 0..20),
        b in proptest::collection::vec(0u64..300, 0..20),
    ) {
        let ab = hist_from(&a);
        ab.merge(&hist_from(&b)).unwrap();
        let ba = hist_from(&b);
        ba.merge(&hist_from(&a)).unwrap();
        assert_hist_eq(&ab, &ba);

        // merging shards == recording the concatenated samples directly
        let mut all = a.clone();
        all.extend_from_slice(&b);
        assert_hist_eq(&ab, &hist_from(&all));
    }
}
