//! Streaming metric fold: constant-memory aggregation for sharded sweeps.
//!
//! A year-scale campaign runs thousands of simulated days; holding every
//! day's telemetry stream until the end would make memory O(campaign).
//! [`MetricFold`] is the alternative the ROADMAP's sharded sweeps call for:
//! attach one per shard as a [`Sink`], let it fold each day-end
//! [`CounterSnapshot`]/[`HistogramSnapshot`] into running [`Counter`]s and
//! [`Histogram`]s via the associative `absorb`/`merge` family, and tally
//! events/spans by name without retaining payloads. Folding per-shard folds
//! into a campaign-level fold ([`MetricFold::merge`]) is associative and
//! commutative, so shards may complete in any order — the aggregate is
//! identical (the same guarantee `tests/merge_props.rs` property-tests for
//! the underlying metrics). Memory stays O(distinct metric names), i.e.
//! O(shards in flight), never O(campaign).
//!
//! Each arriving metric snapshot is treated as a **disjoint delta**: the
//! emitting stream's instruments started from zero (true of
//! `solarcore`'s per-day `DayInstruments`), so absorption is a plain sum.
//! Storage is sorted-`Vec`, never `HashMap` — iteration order is part of
//! the determinism contract, exactly as for
//! [`AggregatingSink`](crate::AggregatingSink).

use crate::metrics::{Counter, Histogram};
use crate::record::{CounterSnapshot, HistogramSnapshot, Record};
use crate::sink::{Sink, SinkError};

/// Order-insensitive, constant-memory fold of metric snapshots.
///
/// ```
/// use telemetry::{Histogram, MetricFold};
///
/// static BOUNDS: [u64; 3] = [1, 2, 4];
/// let day = Histogram::new("newton_iters", &BOUNDS);
/// day.record(3);
///
/// let mut shard = MetricFold::new();
/// shard.absorb_histogram(&day.snapshot(0))?;
///
/// let mut campaign = MetricFold::new();
/// campaign.merge(&shard)?;
/// assert_eq!(campaign.histogram_snapshots()[0].count, 1);
/// # Ok::<(), telemetry::SinkError>(())
/// ```
#[derive(Debug, Default)]
pub struct MetricFold {
    /// Running histograms, sorted by name.
    histograms: Vec<Histogram>,
    /// Running counters, sorted by name.
    counters: Vec<Counter>,
    /// `(record name, occurrences)` tallies for events and spans, sorted.
    tallies: Vec<(&'static str, u64)>,
}

impl MetricFold {
    /// Creates an empty fold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one histogram snapshot in, registering the metric on first
    /// sight (the snapshot's `&'static` bounds define the layout).
    ///
    /// # Errors
    ///
    /// [`SinkError::SchemaMismatch`] if the name was already registered
    /// with a different bucket layout; the fold is left unchanged.
    pub fn absorb_histogram(&mut self, snap: &HistogramSnapshot) -> Result<(), SinkError> {
        let idx = match self
            .histograms
            .binary_search_by(|h| h.name().cmp(snap.name))
        {
            Ok(i) => i,
            Err(i) => {
                self.histograms.insert(i, Histogram::new(snap.name, snap.bounds));
                i
            }
        };
        self.histograms[idx].absorb(snap)
    }

    /// Folds one counter snapshot in, registering the name on first sight.
    pub fn absorb_counter(&mut self, snap: &CounterSnapshot) {
        let idx = match self.counters.binary_search_by(|c| c.name().cmp(snap.name)) {
            Ok(i) => i,
            Err(i) => {
                self.counters.insert(i, Counter::new(snap.name));
                i
            }
        };
        self.counters[idx].absorb(snap);
    }

    /// Adds `n` occurrences of an event/span name to the tallies — the
    /// same bookkeeping [`Sink::record`] does for live streams, exposed so
    /// a fold can be rebuilt from a checkpoint.
    pub fn tally(&mut self, name: &'static str, n: u64) {
        match self.tallies.binary_search_by(|(t, _)| t.cmp(&name)) {
            Ok(i) => self.tallies[i].1 = self.tallies[i].1.saturating_add(n),
            Err(i) => self.tallies.insert(i, (name, n)),
        }
    }

    /// Folds `other` into `self`. Associative and commutative, so
    /// per-shard folds may be combined in any order.
    ///
    /// # Errors
    ///
    /// [`SinkError::SchemaMismatch`] if a histogram name appears in both
    /// folds with different bucket layouts. Metrics folded before the
    /// mismatch remain folded; the offending histogram does not.
    pub fn merge(&mut self, other: &MetricFold) -> Result<(), SinkError> {
        for h in &other.histograms {
            self.absorb_histogram(&h.snapshot(0))?;
        }
        for c in &other.counters {
            self.absorb_counter(&c.snapshot(0));
        }
        for &(name, n) in &other.tallies {
            self.tally(name, n);
        }
        Ok(())
    }

    /// Snapshots of the running histograms, sorted by name (`seq` 0 — the
    /// fold has no stream position).
    pub fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        self.histograms.iter().map(|h| h.snapshot(0)).collect()
    }

    /// Snapshots of the running counters, sorted by name.
    pub fn counter_snapshots(&self) -> Vec<CounterSnapshot> {
        self.counters.iter().map(|c| c.snapshot(0)).collect()
    }

    /// `(record name, occurrences)` tallies for events and spans, sorted.
    pub fn tallies(&self) -> &[(&'static str, u64)] {
        &self.tallies
    }

    /// `true` when nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty() && self.counters.is_empty() && self.tallies.is_empty()
    }
}

impl Sink for MetricFold {
    fn record(&mut self, record: &Record) -> Result<(), SinkError> {
        match record {
            Record::Event(_) | Record::Span(_) => {
                self.tally(record.name(), 1);
                Ok(())
            }
            Record::Counter(c) => {
                self.absorb_counter(c);
                Ok(())
            }
            Record::Histogram(h) => self.absorb_histogram(h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Event;
    use crate::value::field;

    static BOUNDS_A: [u64; 2] = [1, 2];
    static BOUNDS_B: [u64; 2] = [1, 3];

    fn hist(name: &'static str, bounds: &'static [u64], values: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new(name, bounds);
        for &v in values {
            h.record(v);
        }
        h.snapshot(0)
    }

    #[test]
    fn snapshots_fold_as_disjoint_deltas() {
        let mut fold = MetricFold::new();
        fold.absorb_histogram(&hist("h", &BOUNDS_A, &[0, 2])).unwrap();
        fold.absorb_histogram(&hist("h", &BOUNDS_A, &[5])).unwrap();
        let snaps = fold.histogram_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].count, 3);
        assert_eq!(snaps[0].sum, 7);
        assert_eq!(snaps[0].max, 5);
        assert_eq!(snaps[0].counts, vec![1, 1, 1]);
    }

    #[test]
    fn mismatched_bounds_are_rejected() {
        let mut fold = MetricFold::new();
        fold.absorb_histogram(&hist("h", &BOUNDS_A, &[1])).unwrap();
        let err = fold.absorb_histogram(&hist("h", &BOUNDS_B, &[1]));
        assert_eq!(err, Err(SinkError::SchemaMismatch { name: "h" }));
        // the registered histogram is untouched
        assert_eq!(fold.histogram_snapshots()[0].count, 1);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = MetricFold::new();
        let mut b = MetricFold::new();
        a.absorb_histogram(&hist("h", &BOUNDS_A, &[0, 1])).unwrap();
        a.absorb_counter(&CounterSnapshot {
            name: "c",
            seq: 0,
            value: 3,
        });
        b.absorb_histogram(&hist("h", &BOUNDS_A, &[9])).unwrap();
        b.tally("minute", 4);

        let mut ab = MetricFold::new();
        ab.merge(&a).unwrap();
        ab.merge(&b).unwrap();
        let mut ba = MetricFold::new();
        ba.merge(&b).unwrap();
        ba.merge(&a).unwrap();

        assert_eq!(ab.histogram_snapshots(), ba.histogram_snapshots());
        assert_eq!(ab.counter_snapshots(), ba.counter_snapshots());
        assert_eq!(ab.tallies(), ba.tallies());
        assert_eq!(ab.counter_snapshots()[0].value, 3);
        assert_eq!(ab.tallies(), &[("minute", 4)]);
    }

    #[test]
    fn sink_impl_routes_all_variants() {
        let mut fold = MetricFold::new();
        fold.record(&Record::Event(Event {
            name: "minute",
            minute: 450,
            seq: 0,
            fields: vec![field("budget_w", 1.0)],
        }))
        .unwrap();
        fold.record(&Record::Counter(CounterSnapshot {
            name: "c",
            seq: 1,
            value: 2,
        }))
        .unwrap();
        fold.record(&Record::Histogram(hist("h", &BOUNDS_A, &[1])))
            .unwrap();
        assert!(!fold.is_empty());
        assert_eq!(fold.tallies(), &[("minute", 1)]);
        assert_eq!(fold.counter_snapshots()[0].value, 2);
        assert_eq!(fold.histogram_snapshots()[0].count, 1);
    }
}
