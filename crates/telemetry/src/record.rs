//! The record envelope: events, spans and metric snapshots.
//!
//! A telemetry stream is a sequence of [`Record`]s, each stamped with a
//! monotonic `seq` by the emitting [`Telemetry`](crate::Telemetry) handle.
//! Timestamps are **simulation minutes** (minute-of-day, matching
//! `solarenv::EnvSample::minute_of_day`), never wall-clock time.

use crate::value::Field;

/// A point-in-time observation (one minute of the control loop, a TPR
/// reallocation, a day summary, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Schema-stable record name (see `solarcore::telemetry::schema`).
    pub name: &'static str,
    /// Simulation minute-of-day the event was observed at.
    pub minute: u32,
    /// Monotonic per-stream sequence number.
    pub seq: u64,
    /// Typed payload fields, in schema order.
    pub fields: Vec<Field>,
}

/// An operation with extent on the simulation clock (an MPPT tracking
/// period, a budget reallocation pass).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Schema-stable record name.
    pub name: &'static str,
    /// Simulation minute the operation started.
    pub start_minute: u32,
    /// Simulation minute the operation finished (`>= start_minute`).
    pub end_minute: u32,
    /// Monotonic per-stream sequence number (assigned at completion).
    pub seq: u64,
    /// Typed payload fields, in schema order.
    pub fields: Vec<Field>,
}

/// Point-in-stream snapshot of a monotone [`Counter`](crate::Counter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: &'static str,
    /// Monotonic per-stream sequence number.
    pub seq: u64,
    /// Accumulated value at snapshot time.
    pub value: u64,
}

/// Point-in-stream snapshot of a fixed-bucket
/// [`Histogram`](crate::Histogram).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: &'static str,
    /// Monotonic per-stream sequence number.
    pub seq: u64,
    /// Upper bounds (inclusive) of the finite buckets; the final bucket in
    /// `counts` is the overflow bucket `(bounds.last(), ∞)`.
    pub bounds: &'static [u64],
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

/// One element of a telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A point-in-time observation.
    Event(Event),
    /// An operation with start/end minutes.
    Span(Span),
    /// A counter snapshot.
    Counter(CounterSnapshot),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

impl Record {
    /// The record's schema name, independent of variant.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Event(e) => e.name,
            Self::Span(s) => s.name,
            Self::Counter(c) => c.name,
            Self::Histogram(h) => h.name,
        }
    }

    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            Self::Event(e) => e.seq,
            Self::Span(s) => s.seq,
            Self::Counter(c) => c.seq,
            Self::Histogram(h) => h.seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::field;

    #[test]
    fn name_and_seq_cover_all_variants() {
        let e = Record::Event(Event {
            name: "minute",
            minute: 450,
            seq: 1,
            fields: vec![field("budget_w", 10.0)],
        });
        let s = Record::Span(Span {
            name: "track",
            start_minute: 450,
            end_minute: 450,
            seq: 2,
            fields: vec![],
        });
        let c = Record::Counter(CounterSnapshot {
            name: "pv_solves",
            seq: 3,
            value: 7,
        });
        let h = Record::Histogram(HistogramSnapshot {
            name: "newton_iters",
            seq: 4,
            bounds: &[1, 2],
            counts: vec![0, 1, 0],
            count: 1,
            sum: 2,
            max: 2,
        });
        assert_eq!(
            [e.name(), s.name(), c.name(), h.name()],
            ["minute", "track", "pv_solves", "newton_iters"]
        );
        assert_eq!([e.seq(), s.seq(), c.seq(), h.seq()], [1, 2, 3, 4]);
    }
}
