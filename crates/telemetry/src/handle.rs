//! The [`Telemetry`] handle: a cheap, cloneable emitter stamped by the
//! simulation clock.
//!
//! A handle is either **disabled** (the default — every emitter is a no-op
//! that never allocates) or **attached** to a shared [`Sink`]. Clones share
//! the sink, the monotonic sequence counter and the sim-time cursor, so a
//! simulation engine can hand the same stream to its controller, policy and
//! chip layers without plumbing a context object everywhere.
//!
//! Time is the **simulation clock only**: the engine calls
//! [`Telemetry::set_minute`] once per simulated minute and every subsequent
//! record is stamped with that minute. Nothing here reads `SystemTime` or
//! `Instant` — the determinism pass of `cargo xtask analyze` checks that.

use crate::metrics::{Counter, Histogram};
use crate::record::{Event, Record, Span};
use crate::sink::{Sink, SinkError};
use crate::value::Field;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

struct Inner {
    sink: Rc<RefCell<dyn Sink>>,
    seq: Cell<u64>,
    minute: Cell<u32>,
}

/// A cloneable telemetry emitter. See the [module docs](self).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<Inner>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("enabled", &true)
                .field("seq", &inner.seq.get())
                .field("minute", &inner.minute.get())
                .finish_non_exhaustive(),
            None => f
                .debug_struct("Telemetry")
                .field("enabled", &false)
                .finish(),
        }
    }
}

impl Telemetry {
    /// A disabled handle: every emitter is a no-op returning `Ok(())`.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A handle attached to `sink`. Clones share the sink and counters.
    pub fn attached(sink: Rc<RefCell<dyn Sink>>) -> Self {
        Self {
            inner: Some(Rc::new(Inner {
                sink,
                seq: Cell::new(0),
                minute: Cell::new(0),
            })),
        }
    }

    /// `true` when records actually reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the simulation clock; subsequent records are stamped with
    /// `minute` (minute-of-day).
    pub fn set_minute(&self, minute: u32) {
        if let Some(inner) = &self.inner {
            inner.minute.set(minute);
        }
    }

    /// The current simulation minute (0 when disabled).
    pub fn minute(&self) -> u32 {
        self.inner.as_ref().map_or(0, |i| i.minute.get())
    }

    fn emit(&self, make: impl FnOnce(u64, u32) -> Record) -> Result<(), SinkError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let seq = inner.seq.get();
        inner.seq.set(seq + 1);
        let record = make(seq, inner.minute.get());
        inner.sink.borrow_mut().record(&record)
    }

    /// Emits an [`Event`] stamped with the current minute.
    pub fn event(&self, name: &'static str, fields: Vec<Field>) -> Result<(), SinkError> {
        self.emit(|seq, minute| {
            Record::Event(Event {
                name,
                minute,
                seq,
                fields,
            })
        })
    }

    /// Emits a [`Span`] from `start_minute` to the current minute.
    pub fn span(
        &self,
        name: &'static str,
        start_minute: u32,
        fields: Vec<Field>,
    ) -> Result<(), SinkError> {
        self.emit(|seq, minute| {
            Record::Span(Span {
                name,
                start_minute,
                end_minute: minute.max(start_minute),
                seq,
                fields,
            })
        })
    }

    /// Emits a snapshot of `counter`.
    pub fn counter(&self, counter: &Counter) -> Result<(), SinkError> {
        self.emit(|seq, _| Record::Counter(counter.snapshot(seq)))
    }

    /// Emits a snapshot of `histogram`.
    pub fn histogram(&self, histogram: &Histogram) -> Result<(), SinkError> {
        self.emit(|seq, _| Record::Histogram(histogram.snapshot(seq)))
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) -> Result<(), SinkError> {
        match &self.inner {
            Some(inner) => inner.sink.borrow_mut().flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{JsonlSink, RingSink};
    use crate::value::field;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.set_minute(99);
        assert_eq!(tel.minute(), 0);
        tel.event("e", vec![field("x", 1_u64)]).unwrap();
        tel.flush().unwrap();
        assert_eq!(format!("{tel:?}"), "Telemetry { enabled: false }");
    }

    #[test]
    fn clones_share_seq_and_clock() {
        let sink = Rc::new(RefCell::new(RingSink::new(8)));
        let tel = Telemetry::attached(sink.clone());
        let tel2 = tel.clone();
        tel.set_minute(450);
        tel.event("a", vec![]).unwrap();
        tel2.event("b", vec![]).unwrap();
        let seqs: Vec<u64> = sink.borrow().records().map(Record::seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(tel2.minute(), 450);
    }

    #[test]
    fn span_clamps_end_to_start() {
        let sink = Rc::new(RefCell::new(RingSink::new(8)));
        let tel = Telemetry::attached(sink.clone());
        tel.set_minute(450);
        tel.span("track", 460, vec![]).unwrap();
        let record = sink.borrow().records().next().cloned().unwrap();
        match record {
            Record::Span(s) => {
                assert_eq!(s.start_minute, 460);
                assert_eq!(s.end_minute, 460);
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn identical_streams_are_byte_identical() {
        let run = || {
            let sink = Rc::new(RefCell::new(JsonlSink::new()));
            let tel = Telemetry::attached(sink.clone());
            for minute in 450..460 {
                tel.set_minute(minute);
                tel.event("minute", vec![field("budget_w", f64::from(minute) * 0.5)])
                    .unwrap();
            }
            tel.flush().unwrap();
            let bytes = sink.borrow().buffer().to_owned();
            bytes
        };
        assert_eq!(run(), run());
    }
}
