//! Counters and fixed-bucket histograms.
//!
//! Both use interior mutability (`Cell<u64>`) so instrumented code can
//! record through shared references — the PV generator trait, for example,
//! only ever hands out `&self`. Both support `merge`, which is associative
//! and commutative (property-tested in `tests/merge_props.rs`), so
//! per-shard metrics can be combined in any order with a deterministic
//! result — a prerequisite for the ROADMAP's sharded sweeps.

use crate::record::{CounterSnapshot, HistogramSnapshot};
use crate::sink::SinkError;
use std::cell::Cell;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    name: &'static str,
    value: Cell<u64>,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            value: Cell::new(0),
        }
    }

    /// The counter's schema name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to the counter (saturating; counters never wrap).
    pub fn add(&self, n: u64) {
        self.value.set(self.value.get().saturating_add(n));
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current accumulated value.
    pub fn get(&self) -> u64 {
        self.value.get()
    }

    /// Folds `other` into `self`. Associative and commutative.
    pub fn merge(&self, other: &Self) {
        self.add(other.get());
    }

    /// Folds a snapshot taken from *another* stream into this counter —
    /// the cross-stream analogue of [`Self::merge`], used by
    /// [`MetricFold`](crate::MetricFold) to aggregate per-shard totals.
    /// The snapshot is treated as a disjoint delta (each shard's counter
    /// started from zero), so absorption is a plain saturating add.
    pub fn absorb(&self, snap: &CounterSnapshot) {
        self.add(snap.value);
    }

    /// Snapshots the counter into a stream record.
    pub fn snapshot(&self, seq: u64) -> CounterSnapshot {
        CounterSnapshot {
            name: self.name,
            seq,
            value: self.get(),
        }
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// Bucket upper bounds are a `&'static [u64]` (sorted ascending, inclusive);
/// an overflow bucket catches everything above the last bound. The fixed,
/// compile-time bucket layout is what makes `merge` a plain element-wise
/// add — and therefore associative and order-independent.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    counts: Box<[Cell<u64>]>,
    count: Cell<u64>,
    sum: Cell<u64>,
    max: Cell<u64>,
}

impl Histogram {
    /// Creates an empty histogram over `bounds` (must be sorted ascending).
    pub fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Self {
            name,
            bounds,
            counts: (0..=bounds.len()).map(|_| Cell::new(0)).collect(),
            count: Cell::new(0),
            sum: Cell::new(0),
            max: Cell::new(0),
        }
    }

    /// The histogram's schema name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].set(self.counts[idx].get().saturating_add(1));
        self.count.set(self.count.get().saturating_add(1));
        self.sum.set(self.sum.get().saturating_add(v));
        self.max.set(self.max.get().max(v));
    }

    /// Records `n` observations of value zero in one update — equivalent
    /// to `n` calls of `record(0)`, but constant cost. Zero always lands
    /// in the first bucket (no bound is below it) and leaves `sum` and
    /// `max` untouched, so hot paths that mostly observe zero (memoized
    /// solves with no Newton iterations) can tally into a plain counter
    /// and fold it in here once.
    pub fn record_zeros(&self, n: u64) {
        self.counts[0].set(self.counts[0].get().saturating_add(n));
        self.count.set(self.count.get().saturating_add(n));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.get()
    }

    /// Folds `other` into `self` element-wise. Associative and commutative;
    /// fails (without mutating `self`) if the bucket layouts differ.
    pub fn merge(&self, other: &Self) -> Result<(), SinkError> {
        if self.bounds != other.bounds {
            return Err(SinkError::SchemaMismatch { name: other.name });
        }
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            mine.set(mine.get().saturating_add(theirs.get()));
        }
        self.count
            .set(self.count.get().saturating_add(other.count.get()));
        self.sum.set(self.sum.get().saturating_add(other.sum.get()));
        self.max.set(self.max.get().max(other.max.get()));
        Ok(())
    }

    /// Folds a snapshot taken from *another* stream into this histogram
    /// element-wise — the cross-stream analogue of [`Self::merge`], used by
    /// [`MetricFold`](crate::MetricFold) to aggregate per-shard histograms
    /// without holding the source [`Histogram`] alive. Like `merge`, the
    /// fold is associative and commutative, and fails (without mutating
    /// `self`) if the bucket layouts differ.
    pub fn absorb(&self, snap: &HistogramSnapshot) -> Result<(), SinkError> {
        if self.bounds != snap.bounds || self.counts.len() != snap.counts.len() {
            return Err(SinkError::SchemaMismatch { name: snap.name });
        }
        for (mine, theirs) in self.counts.iter().zip(snap.counts.iter()) {
            mine.set(mine.get().saturating_add(*theirs));
        }
        self.count.set(self.count.get().saturating_add(snap.count));
        self.sum.set(self.sum.get().saturating_add(snap.sum));
        self.max.set(self.max.get().max(snap.max));
        Ok(())
    }

    /// Snapshots the histogram into a stream record.
    pub fn snapshot(&self, seq: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name,
            seq,
            bounds: self.bounds,
            counts: self.counts.iter().map(Cell::get).collect(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }

    /// The `q`-quantile estimate from the bucket edges
    /// ([`quantile_from_buckets`]), with the overflow bucket tightened to
    /// the recorded [`Self::max`]. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self.counts.iter().map(Cell::get).collect();
        let v = quantile_from_buckets(self.bounds, &counts, q)?;
        Some(v.min(self.max()))
    }

    /// Median estimate (`quantile(0.50)`).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (`quantile(0.90)`).
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (`quantile(0.99)`).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

/// The `q`-quantile estimate of a fixed-bucket distribution: the inclusive
/// upper bound of the first bucket whose cumulative count reaches rank
/// `ceil(q · total)` (the conventional conservative bucket estimate —
/// exact when every observation in the bucket equals its bound, an upper
/// bound otherwise). Observations in the overflow bucket (the
/// `counts[bounds.len()]` tail) have no upper edge and report
/// [`u64::MAX`]; [`Histogram::quantile`] tightens that to the recorded
/// max. Returns `None` for an empty distribution, a `q` outside `(0, 1]`,
/// or a `counts`/`bounds` length mismatch.
///
/// This free-function form exists for artifact analysis (`tdiff`): parsed
/// reports carry bounds as owned vectors and cannot rebuild a
/// [`Histogram`], whose bounds are `&'static`.
pub fn quantile_from_buckets(bounds: &[u64], counts: &[u64], q: f64) -> Option<u64> {
    if counts.len() != bounds.len() + 1 || !(q > 0.0 && q <= 1.0) {
        return None;
    }
    let total: u64 = counts.iter().fold(0, |acc, &c| acc.saturating_add(c));
    if total == 0 {
        return None;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // ranks are bucket counts (≪ 2^53); ceil of a non-negative product
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cumulative = cumulative.saturating_add(c);
        if cumulative >= rank {
            return Some(bounds.get(i).copied().unwrap_or(u64::MAX));
        }
    }
    Some(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_merges() {
        let a = Counter::new("a");
        a.incr();
        a.add(4);
        assert_eq!(a.get(), 5);
        let b = Counter::new("a");
        b.add(7);
        a.merge(&b);
        assert_eq!(a.get(), 12);
        assert_eq!(a.snapshot(9).value, 12);
        assert_eq!(a.snapshot(9).seq, 9);
    }

    #[test]
    fn histogram_buckets_inclusively_with_overflow() {
        let h = Histogram::new("h", &[1, 2, 4]);
        for v in [0, 1, 2, 3, 4, 5, 100] {
            h.record(v);
        }
        let snap = h.snapshot(0);
        // (..=1): 0,1  (..=2): 2  (..=4): 3,4  overflow: 5,100
        assert_eq!(snap.counts, vec![2, 1, 2, 2]);
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 115);
        assert_eq!(snap.max, 100);
    }

    #[test]
    fn quantiles_walk_the_bucket_edges() {
        let h = Histogram::new("h", &[1, 2, 4, 8]);
        // 60× in (..=1), 30× in (..=2), 9× in (..=4), 1× in (..=8).
        for _ in 0..60 {
            h.record(1);
        }
        for _ in 0..30 {
            h.record(2);
        }
        for _ in 0..9 {
            h.record(3);
        }
        h.record(8);
        assert_eq!(h.p50(), Some(1)); // rank 50 of 100 lands in bucket ..=1
        assert_eq!(h.p90(), Some(2)); // rank 90 exactly exhausts ..=2
        assert_eq!(h.p99(), Some(4)); // rank 99 lands in ..=4
        assert_eq!(h.quantile(1.0), Some(8));
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new("h", &[10]);
        assert_eq!(h.p50(), None, "empty distribution has no quantiles");
        h.record(3);
        assert_eq!(h.quantile(0.0), None, "q must be in (0, 1]");
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.p50(), Some(3), "overflow-free quantile tightens to max");
        // A single overflow observation: the free function saturates, the
        // histogram accessor tightens to the recorded max.
        h.record(99);
        assert_eq!(quantile_from_buckets(&[10], &[1, 1], 1.0), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(99));
    }

    #[test]
    fn free_quantile_validates_shape() {
        assert_eq!(quantile_from_buckets(&[1, 2], &[1, 1], 0.5), None);
        // total 3 → rank 2 lands in the second bucket (..=2).
        assert_eq!(quantile_from_buckets(&[1, 2], &[1, 1, 1], 0.5), Some(2));
        assert_eq!(quantile_from_buckets(&[], &[5], 0.5), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_rejects_mismatched_bounds() {
        let a = Histogram::new("a", &[1, 2]);
        let b = Histogram::new("a", &[1, 3]);
        assert!(a.merge(&b).is_err());
        let c = Histogram::new("a", &[1, 2]);
        c.record(2);
        assert!(a.merge(&c).is_ok());
        assert_eq!(a.count(), 1);
    }
}
