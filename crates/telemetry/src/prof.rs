//! Hierarchical wall-clock profiler, strictly fenced from the
//! deterministic telemetry path.
//!
//! Everything else in this crate runs on the **simulation clock**; this
//! module is the one sanctioned home of ambient time (`std::time::Instant`,
//! waived for the `determinism` analysis pass in `xtask/lint-allow.txt`).
//! The fence is directional: the profiler *reads* the sim clock (via
//! [`Profiler::set_minute`]) to attribute wall time to simulated time, but
//! nothing ever flows back — no simulated value, no record, no digest input
//! depends on a measurement taken here. `determinism_check` §7 proves the
//! pinned hashes are bit-identical with profiling armed.
//!
//! # Model
//!
//! A [`Profiler`] handle (cheap to clone, `Rc`-shared like
//! [`Telemetry`](crate::Telemetry)) owns one span **stack** and one span
//! **tree**. Entering a scope ([`Profiler::scope`]) pushes a frame and
//! returns a [`ProfSpan`] guard; dropping the guard pops the frame and
//! folds the measured interval into the tree node for that call path.
//! Handles are `!Send`, so every thread profiles into its own tree with no
//! locks anywhere — aggregation across threads happens after the fact by
//! [`ProfTree::merge`], which is associative and keyed on span names, so
//! the merged *structure* (shape, call counts, sim-minute attribution) is
//! identical at any thread count; only the wall-clock numbers are
//! machine-dependent.
//!
//! ```
//! use telemetry::prof::Profiler;
//!
//! let prof = Profiler::enabled();
//! {
//!     let _day = prof.scope("day");
//!     for _ in 0..3 {
//!         let _step = prof.scope("step");
//!     }
//! }
//! let tree = prof.tree();
//! assert_eq!(tree.roots[0].name, "day");
//! assert_eq!(tree.roots[0].children[0].calls, 3);
//!
//! // Disabled handles are free: no clock read, no allocation.
//! let off = Profiler::disabled();
//! let _nothing = off.scope("day");
//! assert!(off.tree().roots.is_empty());
//! ```

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

/// One raw node of the live span tree (arena-indexed).
#[derive(Debug)]
struct RawNode {
    name: &'static str,
    /// Arena indices of this node's children, in first-entry order.
    children: Vec<usize>,
    calls: u64,
    wall_ns: u64,
    sim_minutes: u64,
}

/// A captured span interval for the Chrome trace-event export. Only
/// recorded when the profiler was built with [`Profiler::with_trace_log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (a `schema::PROF_*` constant at real call sites).
    pub name: &'static str,
    /// Nanoseconds from the profiler's epoch to span entry.
    pub start_ns: u64,
    /// Measured span duration, nanoseconds.
    pub dur_ns: u64,
    /// Simulation minute-of-day when the span opened.
    pub minute: u32,
    /// Stack depth at entry (0 = a root span).
    pub depth: u32,
}

/// Shared state behind an enabled [`Profiler`] handle.
struct ProfInner {
    epoch: Instant,
    nodes: RefCell<Vec<RawNode>>,
    /// Arena indices of the currently-open spans, outermost first.
    stack: RefCell<Vec<usize>>,
    minute: Cell<u32>,
    /// Trace-event log and its capacity (`0` disables capture).
    events: RefCell<Vec<TraceEvent>>,
    events_cap: usize,
}

/// A hierarchical wall-clock profiler handle.
///
/// Clones share the same tree (like [`Telemetry`](crate::Telemetry) handles
/// share a sink); the disabled handle is a no-op whose [`Profiler::scope`]
/// never reads the clock.
#[derive(Clone)]
pub struct Profiler {
    inner: Option<Rc<ProfInner>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::disabled()
    }
}

impl Profiler {
    /// A no-op handle: every scope is free, the tree stays empty.
    pub fn disabled() -> Profiler {
        Profiler { inner: None }
    }

    /// An armed handle aggregating into a fresh span tree (no trace log).
    pub fn enabled() -> Profiler {
        Profiler::with_trace_log(0)
    }

    /// An armed handle that additionally captures up to `cap` raw span
    /// intervals for the Chrome trace-event export. `0` disables capture.
    pub fn with_trace_log(cap: usize) -> Profiler {
        Profiler {
            inner: Some(Rc::new(ProfInner {
                epoch: Instant::now(),
                nodes: RefCell::new(Vec::new()),
                stack: RefCell::new(Vec::new()),
                minute: Cell::new(0),
                events: RefCell::new(Vec::new()),
                events_cap: cap,
            })),
        }
    }

    /// `true` when scopes actually measure.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the simulation clock used for sim-time attribution.
    /// Call sites feed this the same minute-of-day they feed
    /// [`Telemetry::set_minute`](crate::Telemetry::set_minute).
    pub fn set_minute(&self, minute: u32) {
        if let Some(inner) = &self.inner {
            inner.minute.set(minute);
        }
    }

    /// The last simulation minute fed to [`Self::set_minute`].
    pub fn minute(&self) -> u32 {
        self.inner.as_ref().map_or(0, |i| i.minute.get())
    }

    /// Enters a named scope, returning the guard that measures it. The
    /// interval from this call to the guard's drop is folded into the span
    /// tree under the current call path.
    #[must_use = "the returned guard measures until dropped; binding it to `_` drops immediately"]
    pub fn scope(&self, name: &'static str) -> ProfSpan {
        let Some(inner) = &self.inner else {
            return ProfSpan { ctx: None };
        };
        let node = inner.enter(name);
        ProfSpan {
            ctx: Some(SpanCtx {
                inner: Rc::clone(inner),
                node,
                start: Instant::now(),
                start_minute: inner.minute.get(),
            }),
        }
    }

    /// Snapshots the aggregated span tree. Children are sorted by name, so
    /// two runs that execute the same scopes yield structurally identical
    /// trees regardless of timing.
    pub fn tree(&self) -> ProfTree {
        let Some(inner) = &self.inner else {
            return ProfTree { roots: Vec::new() };
        };
        let nodes = match inner.nodes.try_borrow() {
            Ok(nodes) => nodes,
            Err(_) => return ProfTree { roots: Vec::new() },
        };
        // Roots are the nodes no other node claims as a child.
        let mut is_child = vec![false; nodes.len()];
        for node in nodes.iter() {
            for &c in &node.children {
                if let Some(slot) = is_child.get_mut(c) {
                    *slot = true;
                }
            }
        }
        let mut roots: Vec<ProfNode> = (0..nodes.len())
            .filter(|&i| !is_child[i])
            .map(|i| freeze(&nodes, i))
            .collect();
        roots.sort_by(|a, b| a.name.cmp(&b.name));
        ProfTree { roots }
    }

    /// Drains the captured trace-event log (empty unless built with
    /// [`Self::with_trace_log`]). Events come back in completion order.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => match inner.events.try_borrow_mut() {
                Ok(mut events) => std::mem::take(&mut *events),
                Err(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }
}

impl ProfInner {
    /// Finds or creates the child named `name` under the innermost open
    /// span (or at the root) and pushes it on the stack.
    fn enter(&self, name: &'static str) -> usize {
        let Ok(mut nodes) = self.nodes.try_borrow_mut() else {
            return usize::MAX;
        };
        let Ok(mut stack) = self.stack.try_borrow_mut() else {
            return usize::MAX;
        };
        let idx = match stack.last().copied() {
            Some(parent) => {
                let found = nodes[parent]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| nodes[c].name == name);
                match found {
                    Some(c) => c,
                    None => {
                        let c = push_node(&mut nodes, name);
                        nodes[parent].children.push(c);
                        c
                    }
                }
            }
            None => {
                // A root scope: reuse an existing root of the same name.
                let mut claimed = vec![false; nodes.len()];
                for node in nodes.iter() {
                    for &c in &node.children {
                        if let Some(slot) = claimed.get_mut(c) {
                            *slot = true;
                        }
                    }
                }
                let found = (0..nodes.len()).find(|&i| !claimed[i] && nodes[i].name == name);
                match found {
                    Some(i) => i,
                    None => push_node(&mut nodes, name),
                }
            }
        };
        stack.push(idx);
        idx
    }

    /// Closes the span for `node`: folds the measurement into the tree and
    /// pops the stack (defensively, in case guards were dropped out of
    /// order).
    fn exit(&self, node: usize, wall_ns: u64, start_minute: u32, start: Instant) {
        if let Ok(mut nodes) = self.nodes.try_borrow_mut() {
            if let Some(raw) = nodes.get_mut(node) {
                raw.calls += 1;
                raw.wall_ns = raw.wall_ns.saturating_add(wall_ns);
                raw.sim_minutes = raw
                    .sim_minutes
                    .saturating_add(u64::from(self.minute.get().saturating_sub(start_minute)));
            }
        }
        let depth = match self.stack.try_borrow_mut() {
            Ok(mut stack) => {
                let depth = stack.len().saturating_sub(1);
                if stack.last() == Some(&node) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|&i| i == node) {
                    stack.remove(pos);
                }
                depth
            }
            Err(_) => 0,
        };
        if self.events_cap > 0 {
            if let Ok(mut events) = self.events.try_borrow_mut() {
                if events.len() < self.events_cap {
                    if let Some(raw_name) = self.name_of(node) {
                        let start_ns = saturating_ns(start.duration_since(self.epoch));
                        events.push(TraceEvent {
                            name: raw_name,
                            start_ns,
                            dur_ns: wall_ns,
                            minute: start_minute,
                            #[allow(clippy::cast_possible_truncation)] // stack depth is tiny
                            depth: depth as u32,
                        });
                    }
                }
            }
        }
    }

    fn name_of(&self, node: usize) -> Option<&'static str> {
        self.nodes.try_borrow().ok()?.get(node).map(|n| n.name)
    }
}

fn push_node(nodes: &mut Vec<RawNode>, name: &'static str) -> usize {
    nodes.push(RawNode {
        name,
        children: Vec::new(),
        calls: 0,
        wall_ns: 0,
        sim_minutes: 0,
    });
    nodes.len() - 1
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Recursively freezes arena node `i` into an owned [`ProfNode`].
fn freeze(nodes: &[RawNode], i: usize) -> ProfNode {
    let raw = &nodes[i];
    let mut children: Vec<ProfNode> = raw.children.iter().map(|&c| freeze(nodes, c)).collect();
    children.sort_by(|a, b| a.name.cmp(&b.name));
    ProfNode {
        name: raw.name.to_owned(),
        calls: raw.calls,
        wall_ns: raw.wall_ns,
        sim_minutes: raw.sim_minutes,
        children,
    }
}

/// The measurement context a live [`ProfSpan`] carries to its drop.
struct SpanCtx {
    inner: Rc<ProfInner>,
    node: usize,
    start: Instant,
    start_minute: u32,
}

/// RAII guard for one profiled scope; the measured interval ends when the
/// guard drops. Obtained from [`Profiler::scope`].
#[must_use = "the guard measures until dropped; binding it to `_` drops immediately"]
pub struct ProfSpan {
    ctx: Option<SpanCtx>,
}

impl std::fmt::Debug for ProfSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfSpan")
            .field("armed", &self.ctx.is_some())
            .finish()
    }
}

impl Drop for ProfSpan {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            let wall_ns = saturating_ns(ctx.start.elapsed());
            ctx.inner.exit(ctx.node, wall_ns, ctx.start_minute, ctx.start);
        }
    }
}

/// One aggregated node of a frozen span tree: a span name plus everything
/// measured under that call path.
///
/// `calls` and `sim_minutes` (and the tree shape itself) are deterministic
/// — pure functions of the simulated execution path; `wall_ns` is the one
/// machine-dependent field, which exporters quarantine accordingly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfNode {
    /// Span name.
    pub name: String,
    /// Number of completed scopes at this call path.
    pub calls: u64,
    /// Total wall time (machine-dependent), nanoseconds.
    pub wall_ns: u64,
    /// Simulation minutes elapsed while spans at this path were open.
    pub sim_minutes: u64,
    /// Child nodes, sorted by name.
    pub children: Vec<ProfNode>,
}

impl ProfNode {
    /// Wall time spent in this node itself, excluding children
    /// (saturating: concurrent child overlap cannot go negative).
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.wall_ns).sum();
        self.wall_ns.saturating_sub(children)
    }

    fn merge_from(&mut self, other: &ProfNode) {
        self.calls += other.calls;
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
        self.sim_minutes = self.sim_minutes.saturating_add(other.sim_minutes);
        merge_children(&mut self.children, &other.children);
    }
}

/// Merges `theirs` into `ours`, both sorted by name; the result stays
/// sorted.
fn merge_children(ours: &mut Vec<ProfNode>, theirs: &[ProfNode]) {
    for node in theirs {
        match ours.binary_search_by(|probe| probe.name.as_str().cmp(node.name.as_str())) {
            Ok(i) => ours[i].merge_from(node),
            Err(i) => ours.insert(i, node.clone()),
        }
    }
}

/// A frozen, thread-independent span tree (the `Send` product of a
/// per-thread [`Profiler`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfTree {
    /// Top-level spans, sorted by name.
    pub roots: Vec<ProfNode>,
}

impl ProfTree {
    /// Folds another tree into this one, node by matching call path.
    /// Associative and commutative up to the canonical name ordering, so
    /// shard trees merged in any grouping produce the same structure.
    pub fn merge(&mut self, other: &ProfTree) {
        merge_children(&mut self.roots, &other.roots);
    }

    /// Total wall time across the top-level spans, nanoseconds.
    pub fn total_wall_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.wall_ns).sum()
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        fn count(node: &ProfNode) -> usize {
            1 + node.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }
}

/// A fenced wall-clock stopwatch for coarse phase timing (wave walls,
/// progress ETAs). Lives here so ambient time stays confined to this
/// module; like all profiler output, its readings must never feed a
/// deterministic artifact.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    #[allow(clippy::new_without_default)] // a stopwatch has no meaningful default
    pub fn new() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Self::new`].
    pub fn elapsed_ns(&self) -> u64 {
        saturating_ns(self.start.elapsed())
    }

    /// Seconds since [`Self::new`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        prof.set_minute(300);
        assert_eq!(prof.minute(), 0);
        let _span = prof.scope("day");
        assert!(prof.tree().roots.is_empty());
        assert!(prof.take_events().is_empty());
    }

    #[test]
    fn nesting_builds_the_expected_tree() {
        let prof = Profiler::enabled();
        {
            let _day = prof.scope("day");
            for _ in 0..3 {
                let _tpr = prof.scope("tpr");
            }
            let _track = prof.scope("track");
        }
        {
            let _day = prof.scope("day");
            let _track = prof.scope("track");
        }
        let tree = prof.tree();
        assert_eq!(tree.roots.len(), 1);
        let day = &tree.roots[0];
        assert_eq!(day.name, "day");
        assert_eq!(day.calls, 2);
        // Children sorted by name: tpr < track.
        let names: Vec<&str> = day.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["tpr", "track"]);
        assert_eq!(day.children[0].calls, 3);
        assert_eq!(day.children[1].calls, 2);
        assert!(day.wall_ns >= day.children.iter().map(|c| c.wall_ns).sum::<u64>());
        assert_eq!(day.self_ns(), day.wall_ns - day.children[0].wall_ns - day.children[1].wall_ns);
    }

    #[test]
    fn sim_minute_attribution_tracks_set_minute() {
        let prof = Profiler::enabled();
        prof.set_minute(100);
        {
            let _day = prof.scope("day");
            prof.set_minute(160);
        }
        assert_eq!(prof.minute(), 160);
        let tree = prof.tree();
        assert_eq!(tree.roots[0].sim_minutes, 60);
    }

    #[test]
    fn clones_share_one_tree() {
        let prof = Profiler::enabled();
        let alias = prof.clone();
        {
            let _a = prof.scope("day");
            let _b = alias.scope("inner");
        }
        let tree = alias.tree();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].children[0].name, "inner");
    }

    #[test]
    fn merge_is_order_insensitive() {
        let build = |calls: u64| {
            let prof = Profiler::enabled();
            for _ in 0..calls {
                let _s = prof.scope("shard");
                let _t = prof.scope("day");
            }
            prof.tree()
        };
        let a = build(2);
        let b = build(5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.roots[0].calls, 7);
        assert_eq!(ab.roots[0].children[0].calls, 7);
        // Structure and deterministic fields agree in both merge orders.
        fn strip(node: &ProfNode) -> (String, u64, u64, Vec<(String, u64, u64)>) {
            (
                node.name.clone(),
                node.calls,
                node.sim_minutes,
                node.children
                    .iter()
                    .map(|c| (c.name.clone(), c.calls, c.sim_minutes))
                    .collect(),
            )
        }
        assert_eq!(strip(&ab.roots[0]), strip(&ba.roots[0]));
        assert_eq!(ab.node_count(), 2);
    }

    #[test]
    fn trace_log_captures_bounded_events() {
        let prof = Profiler::with_trace_log(3);
        prof.set_minute(420);
        for _ in 0..5 {
            let _s = prof.scope("step");
        }
        let events = prof.take_events();
        assert_eq!(events.len(), 3, "capacity bounds the log");
        assert!(events.iter().all(|e| e.name == "step" && e.minute == 420 && e.depth == 0));
        assert!(prof.take_events().is_empty(), "take drains");
    }

    #[test]
    fn nested_trace_events_record_depth() {
        let prof = Profiler::with_trace_log(8);
        {
            let _outer = prof.scope("outer");
            let _inner = prof.scope("inner");
        }
        let events = prof.take_events();
        // Inner completes first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].depth, 0);
        assert!(events[1].start_ns <= events[0].start_ns);
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::new();
        let first = sw.elapsed_ns();
        let second = sw.elapsed_ns();
        assert!(second >= first);
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
