//! Zero-dependency structured telemetry for the SolarCore control loop.
//!
//! The paper evaluates SolarCore by *introspecting* its MPPT control loop —
//! per-period tracking error (Table 7), transfer-ratio/load trajectories
//! (Figs. 13–14), per-core V/F allocation histories (Fig. 21) — and this
//! crate is the substrate that makes those observations first-class instead
//! of opaque end-of-run aggregates. It provides:
//!
//! * [`Record`]s — [`Event`]s and [`Span`]s with typed [`Field`]s, plus
//!   snapshots of [`Counter`]s and fixed-bucket [`Histogram`]s;
//! * a pluggable [`Sink`] trait with five implementations: [`NullSink`]
//!   (benches), [`JsonlSink`] (runs, byte-deterministic JSON Lines),
//!   [`RingSink`] (bounded in-memory collector keeping the most recent
//!   records), [`AggregatingSink`] (order-insensitive roll-ups for
//!   `results/`) and [`MetricFold`] (constant-memory streaming aggregation
//!   for sharded campaigns);
//! * a cheap, cloneable [`Telemetry`] handle that stamps every record with
//!   the **simulation clock** (minute-of-day) and a monotonic sequence
//!   number. Ambient time is confined to exactly one module — the
//!   wall-clock [`prof`]iler, which is fenced so nothing it measures can
//!   flow into a record, a digest, or any simulated value — so instrumented
//!   simulations stay bitwise deterministic (the PR-2 contract);
//!   `cargo xtask analyze` enforces the fence (the sole `Instant` waiver is
//!   `crates/telemetry/src/prof.rs` in `xtask/lint-allow.txt`);
//! * a hierarchical wall-clock [`Profiler`] ([`prof`]): scoped [`ProfSpan`]
//!   guards aggregate into a per-thread span tree ([`ProfTree`]) whose
//!   *structure* (shape, call counts, sim-minute attribution) is
//!   deterministic while wall times stay quarantined as machine-dependent.
//!
//! The concrete schema emitted by the simulation engine (record names,
//! field names, units) is documented in `solarcore::telemetry::schema` and
//! DESIGN.md §14; this crate only fixes the *envelope* (record shapes and
//! their JSON Lines encoding).
//!
//! # Quick start
//!
//! ```
//! use telemetry::{field, JsonlSink, Telemetry};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let sink = Rc::new(RefCell::new(JsonlSink::new()));
//! let tel = Telemetry::attached(sink.clone());
//! tel.set_minute(450); // 07:30, sim clock — never wall clock
//! tel.event("minute", vec![field("budget_w", 123.5), field("source", "solar")])?;
//! tel.flush()?;
//! let line = sink.borrow().buffer().to_owned();
//! assert_eq!(
//!     line,
//!     "{\"t\":\"event\",\"name\":\"minute\",\"minute\":450,\"seq\":0,\
//!      \"fields\":{\"budget_w\":123.5,\"source\":\"solar\"}}\n"
//! );
//!
//! // A disabled handle is a no-op: same call sites, zero records.
//! let off = Telemetry::disabled();
//! off.event("minute", vec![field("budget_w", 0.0)])?;
//! assert!(!off.is_enabled());
//! # Ok::<(), telemetry::SinkError>(())
//! ```
//!
//! ## Error policy
//!
//! Every emission path returns `Result<(), SinkError>` and call sites must
//! propagate — `cargo xtask lint` refuses `unwrap`/`expect` waivers inside
//! this crate, so there is no way to smuggle a panic into the telemetry
//! path of a production run.
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![cfg_attr(test, allow(clippy::float_cmp))] // unit tests assert exact constructed values

pub mod fold;
pub mod handle;
pub mod metrics;
pub mod prof;
pub mod record;
pub mod sink;
pub mod value;

pub use fold::MetricFold;
pub use handle::Telemetry;
pub use metrics::{quantile_from_buckets, Counter, Histogram};
pub use prof::{ProfNode, ProfSpan, ProfTree, Profiler, Stopwatch, TraceEvent};
pub use record::{CounterSnapshot, Event, HistogramSnapshot, Record, Span};
pub use sink::{AggregatingSink, JsonlSink, NullSink, RingSink, Sink, SinkError};
pub use value::{field, Field, Value};
