//! Pluggable sinks: where a telemetry stream goes.
//!
//! | Sink | Purpose |
//! |------|---------|
//! | [`NullSink`] | benches — proves instrumentation overhead is noise |
//! | [`JsonlSink`] | runs — byte-deterministic JSON Lines into memory |
//! | [`RingSink`] | bounded in-memory collector (most recent N records) |
//! | [`AggregatingSink`] | order-insensitive roll-ups for `results/` |
//!
//! All sinks are in-memory; persistence is the caller's job (e.g.
//! `trace_report` writes a [`JsonlSink`] buffer to
//! `results/telemetry_golden_co_jan_hm2.jsonl`). That keeps the sink trait
//! infallible in practice while the `Result` signature still forces every
//! call site to propagate — the contract `cargo xtask lint` enforces for
//! this crate.

use crate::record::{Event, Record, Span};
use crate::value::{Field, Value};
use std::collections::VecDeque;
use std::fmt;

/// Why a sink refused a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SinkError {
    /// The same metric name was re-registered with a different shape
    /// (e.g. histogram bucket layouts differ between merges).
    SchemaMismatch {
        /// The offending metric name.
        name: &'static str,
    },
    /// The sink was explicitly closed and cannot accept more records.
    Closed,
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SchemaMismatch { name } => {
                write!(f, "telemetry schema mismatch for metric `{name}`")
            }
            Self::Closed => write!(f, "telemetry sink is closed"),
        }
    }
}

impl std::error::Error for SinkError {}

/// Destination for a telemetry stream.
///
/// Implementations must be order-preserving (a JSONL stream's byte
/// determinism depends on it) and must not consult ambient time or entropy.
pub trait Sink {
    /// Accepts one record.
    fn record(&mut self, record: &Record) -> Result<(), SinkError>;

    /// Flushes buffered state; default is a no-op.
    fn flush(&mut self) -> Result<(), SinkError> {
        Ok(())
    }
}

/// Discards everything. Used by benches to measure instrumentation
/// overhead with the emission path fully exercised.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _record: &Record) -> Result<(), SinkError> {
        Ok(())
    }
}

/// Bounded in-memory collector keeping the most recent `capacity` records.
///
/// This is the "ring buffer" of the subsystem: cheap enough to leave
/// attached to a long sweep, inspectable after the fact, and it never
/// grows beyond its bound — old records are evicted FIFO.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    ring: VecDeque<Record>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.ring.iter()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl Sink for RingSink {
    fn record(&mut self, record: &Record) -> Result<(), SinkError> {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(record.clone());
        Ok(())
    }
}

/// Byte-deterministic JSON Lines encoder into an in-memory buffer.
///
/// One record per line. Floats use Rust's shortest round-trip formatting
/// (`{}`), so parsing the stream recovers the exact `f64` bits — the
/// golden-trace check in `cargo xtask trace` relies on this to recompute
/// tracking error to 1e-9 against `results/tab07_tracking_error.json`.
/// Non-finite floats encode as `null` (JSON has no NaN/Inf).
#[derive(Debug, Clone, Default)]
pub struct JsonlSink {
    buf: String,
}

impl JsonlSink {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded stream so far.
    pub fn buffer(&self) -> &str {
        &self.buf
    }

    /// Consumes the sink, returning the encoded stream.
    pub fn into_string(self) -> String {
        self.buf
    }

    /// Discards the stream encoded so far, keeping the allocation — lets
    /// one sink be reused across runs (e.g. repeated benchmark iterations).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, record: &Record) -> Result<(), SinkError> {
        encode_record(&mut self.buf, record);
        self.buf.push('\n');
        Ok(())
    }
}

fn encode_record(out: &mut String, record: &Record) {
    match record {
        Record::Event(Event {
            name,
            minute,
            seq,
            fields,
        }) => {
            out.push_str("{\"t\":\"event\",\"name\":");
            encode_str(out, name);
            out.push_str(&format!(",\"minute\":{minute},\"seq\":{seq},\"fields\":"));
            encode_fields(out, fields);
            out.push('}');
        }
        Record::Span(Span {
            name,
            start_minute,
            end_minute,
            seq,
            fields,
        }) => {
            out.push_str("{\"t\":\"span\",\"name\":");
            encode_str(out, name);
            out.push_str(&format!(
                ",\"start_minute\":{start_minute},\"end_minute\":{end_minute},\"seq\":{seq},\"fields\":"
            ));
            encode_fields(out, fields);
            out.push('}');
        }
        Record::Counter(c) => {
            out.push_str("{\"t\":\"counter\",\"name\":");
            encode_str(out, c.name);
            out.push_str(&format!(",\"seq\":{},\"value\":{}}}", c.seq, c.value));
        }
        Record::Histogram(h) => {
            out.push_str("{\"t\":\"histogram\",\"name\":");
            encode_str(out, h.name);
            out.push_str(&format!(",\"seq\":{},\"bounds\":[", h.seq));
            push_u64_list(out, h.bounds.iter().copied());
            out.push_str("],\"counts\":[");
            push_u64_list(out, h.counts.iter().copied());
            out.push_str(&format!(
                "],\"count\":{},\"sum\":{},\"max\":{}}}",
                h.count, h.sum, h.max
            ));
        }
    }
}

fn push_u64_list(out: &mut String, values: impl Iterator<Item = u64>) {
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
}

fn encode_fields(out: &mut String, fields: &[Field]) {
    out.push('{');
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_str(out, f.name);
        out.push(':');
        encode_value(out, &f.value);
    }
    out.push('}');
}

fn encode_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
        Value::F64(_) => out.push_str("null"),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(s) => encode_str(out, s),
        Value::Text(s) => encode_str(out, s),
    }
}

fn encode_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Order-insensitive roll-up of a stream's metrics.
///
/// Events and spans are tallied per name; counter and histogram snapshots
/// are folded by name (later snapshots of the same monotone metric
/// supersede earlier ones, so folding keeps the maximum). Storage is
/// sorted-`Vec`, not `HashMap` — iteration order is part of the
/// determinism contract.
#[derive(Debug, Clone, Default)]
pub struct AggregatingSink {
    /// `(record name, occurrences)` for events and spans, sorted by name.
    tallies: Vec<(&'static str, u64)>,
    /// Latest counter value per name, sorted by name.
    counters: Vec<(&'static str, u64)>,
}

impl AggregatingSink {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(record name, occurrences)` tallies for events and spans, sorted.
    pub fn tallies(&self) -> &[(&'static str, u64)] {
        &self.tallies
    }

    /// Final counter values by name, sorted.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    fn bump(slot: &mut Vec<(&'static str, u64)>, name: &'static str, v: u64, fold_max: bool) {
        match slot.binary_search_by(|(n, _)| n.cmp(&name)) {
            Ok(i) => {
                let cur = slot[i].1;
                slot[i].1 = if fold_max {
                    cur.max(v)
                } else {
                    cur.saturating_add(v)
                };
            }
            Err(i) => slot.insert(i, (name, v)),
        }
    }
}

impl Sink for AggregatingSink {
    fn record(&mut self, record: &Record) -> Result<(), SinkError> {
        match record {
            Record::Event(_) | Record::Span(_) => {
                Self::bump(&mut self.tallies, record.name(), 1, false);
            }
            Record::Counter(c) => Self::bump(&mut self.counters, c.name, c.value, true),
            Record::Histogram(h) => Self::bump(&mut self.counters, h.name, h.count, true),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CounterSnapshot;
    use crate::value::field;

    fn minute_event(seq: u32) -> Record {
        Record::Event(Event {
            name: "minute",
            minute: 450 + seq,
            seq: u64::from(seq),
            fields: vec![field("budget_w", 71.5), field("source", "solar")],
        })
    }

    #[test]
    fn jsonl_is_one_line_per_record_with_roundtrip_floats() {
        let mut sink = JsonlSink::new();
        sink.record(&minute_event(0)).unwrap();
        let line = sink.buffer();
        assert!(line.ends_with('\n'));
        assert_eq!(line.lines().count(), 1);
        assert!(line.contains("\"budget_w\":71.5"));
        assert!(line.contains("\"source\":\"solar\""));
        // shortest round-trip: an exact integer-valued f64 prints bare
        let mut s2 = JsonlSink::new();
        s2.record(&Record::Event(Event {
            name: "e",
            minute: 0,
            seq: 0,
            fields: vec![field("x", 1.0_f64), field("y", f64::NAN)],
        }))
        .unwrap();
        assert!(s2.buffer().contains("\"x\":1,"));
        assert!(s2.buffer().contains("\"y\":null"));
    }

    #[test]
    fn into_string_hands_back_the_whole_stream() {
        let mut sink = JsonlSink::new();
        sink.record(&minute_event(0)).unwrap();
        sink.record(&minute_event(1)).unwrap();
        let expected = sink.buffer().to_owned();
        let owned = sink.into_string();
        assert_eq!(owned, expected);
        assert_eq!(owned.lines().count(), 2);
    }

    #[test]
    fn jsonl_escapes_strings() {
        let mut sink = JsonlSink::new();
        sink.record(&Record::Event(Event {
            name: "e",
            minute: 0,
            seq: 0,
            fields: vec![field("msg", "a\"b\\c\nd".to_owned())],
        }))
        .unwrap();
        assert!(sink.buffer().contains("\"msg\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut ring = RingSink::new(2);
        for seq in 0..5 {
            ring.record(&minute_event(seq)).unwrap();
        }
        let seqs: Vec<u64> = ring.records().map(Record::seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(ring.len(), 2);
        assert!(!ring.is_empty());
    }

    #[test]
    fn aggregator_tallies_and_folds() {
        let mut agg = AggregatingSink::new();
        for seq in 0..3 {
            agg.record(&minute_event(seq)).unwrap();
        }
        for value in [5, 9, 7] {
            agg.record(&Record::Counter(CounterSnapshot {
                name: "pv_solves",
                seq: 10,
                value,
            }))
            .unwrap();
        }
        assert_eq!(agg.tallies(), &[("minute", 3)]);
        assert_eq!(agg.counters(), &[("pv_solves", 9)]);
    }
}
