//! Typed field values carried by telemetry events and spans.
//!
//! Values are deliberately restricted to scalars plus strings: the schema
//! contract (DESIGN.md §14) keeps every record flat so JSONL consumers can
//! scan line-by-line without recursion. Physical quantities are carried as
//! `f64` **with the unit encoded in the field name suffix** (`_w`, `_v`,
//! `_a`, `_wh`, `_c`), mirroring the `pv::units` newtype the producer read
//! the number from; see `solarcore::telemetry::schema`.

/// A scalar telemetry value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sequence numbers, core ids).
    U64(u64),
    /// Signed integer (deltas, signed step counts).
    I64(i64),
    /// IEEE-754 double. Serialized with Rust's shortest round-trip
    /// formatting so a JSONL reader recovers the exact bits; non-finite
    /// values serialize as JSON `null`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string — schema-stable labels (`"solar"`, `"utility"`).
    Str(&'static str),
    /// Owned string — free-form diagnostic text.
    Text(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Self::I64(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Self::Str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Text(v)
    }
}

/// One named field on an [`Event`](crate::Event) or [`Span`](crate::Span).
///
/// Field names are `&'static str` by design: the set of names is the
/// schema, fixed at compile time and documented in
/// `solarcore::telemetry::schema`.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Schema-stable field name (snake_case, unit suffix where physical).
    pub name: &'static str,
    /// The value.
    pub value: Value,
}

/// Builds a [`Field`] from anything convertible into a [`Value`].
///
/// ```
/// use telemetry::{field, Value};
/// let f = field("budget_w", 71.5);
/// assert_eq!(f.name, "budget_w");
/// assert_eq!(f.value, Value::F64(71.5));
/// ```
pub fn field(name: &'static str, value: impl Into<Value>) -> Field {
    Field {
        name,
        value: value.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_pick_the_right_variant() {
        assert_eq!(Value::from(3_u32), Value::U64(3));
        assert_eq!(Value::from(3_usize), Value::U64(3));
        assert_eq!(Value::from(-2_i32), Value::I64(-2));
        assert_eq!(Value::from(1.5_f64), Value::F64(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("solar"), Value::Str("solar"));
        assert_eq!(Value::from("x".to_owned()), Value::Text("x".to_owned()));
    }
}
