//! Solar geometry and the Haurwitz clear-sky irradiance model.
//!
//! These closed-form relations give the deterministic "envelope" of solar
//! power availability; the stochastic cloud process in [`crate::weather`]
//! modulates it.

/// Solar declination in radians for a day of year (1-based), using the
/// Cooper approximation `δ = 23.45° · sin(360·(284 + n)/365)`.
pub fn declination(day_of_year: u32) -> f64 {
    let n = day_of_year as f64;
    (23.45_f64).to_radians() * ((360.0 * (284.0 + n) / 365.0).to_radians()).sin()
}

/// Hour angle in radians for a local solar time expressed in minutes after
/// midnight (solar noon = 720 min → 0 rad; 15° per hour).
pub fn hour_angle(minute_of_day: f64) -> f64 {
    ((minute_of_day / 60.0 - 12.0) * 15.0).to_radians()
}

/// Sine of the solar elevation angle for a site latitude (radians), solar
/// declination (radians) and hour angle (radians):
/// `sin α = sin φ·sin δ + cos φ·cos δ·cos h`.
pub fn sin_elevation(latitude_rad: f64, declination_rad: f64, hour_angle_rad: f64) -> f64 {
    latitude_rad.sin() * declination_rad.sin()
        + latitude_rad.cos() * declination_rad.cos() * hour_angle_rad.cos()
}

/// Haurwitz clear-sky global horizontal irradiance in W/m²:
/// `GHI = 1098 · sin α · exp(−0.057 / sin α)`, zero below the horizon.
pub fn haurwitz_clear_sky(sin_elev: f64) -> f64 {
    if sin_elev <= 0.0 {
        0.0
    } else {
        1098.0 * sin_elev * (-0.057 / sin_elev).exp()
    }
}

/// Clear-sky global horizontal irradiance in W/m² for a site latitude
/// (degrees), day of year, and minute of local solar day.
pub fn clear_sky_ghi(latitude_deg: f64, day_of_year: u32, minute_of_day: f64) -> f64 {
    let lat = latitude_deg.to_radians();
    let decl = declination(day_of_year);
    let h = hour_angle(minute_of_day);
    haurwitz_clear_sky(sin_elevation(lat, decl, h))
}

/// Clear-sky diffuse fraction assumed by the transposition model.
const CLEAR_SKY_DIFFUSE_FRACTION: f64 = 0.14;

/// Cap on the beam geometric gain near the horizon, where `1/sin α` blows up.
const MAX_BEAM_GAIN: f64 = 3.0;

/// Clear-sky plane-of-array (POA) irradiance in W/m² on a south-facing panel
/// tilted at the site latitude — the standard fixed-mount orientation, and
/// the one NREL's kWh/m²/day resource maps (paper Table 2) assume.
///
/// The GHI from [`clear_sky_ghi`] is decomposed into beam and diffuse parts;
/// the beam is re-projected with the incidence factor for latitude tilt
/// (`cos θ_i = cos δ · cos h`) and the diffuse is reduced by the sky-view
/// factor `(1 + cos β)/2`.
pub fn clear_sky_poa(latitude_deg: f64, day_of_year: u32, minute_of_day: f64) -> f64 {
    let lat = latitude_deg.to_radians();
    let decl = declination(day_of_year);
    let h = hour_angle(minute_of_day);
    let sin_elev = sin_elevation(lat, decl, h);
    if sin_elev <= 0.0 {
        return 0.0;
    }
    let ghi = haurwitz_clear_sky(sin_elev);
    let beam_h = (1.0 - CLEAR_SKY_DIFFUSE_FRACTION) * ghi;
    let diffuse_h = CLEAR_SKY_DIFFUSE_FRACTION * ghi;
    // Incidence on a latitude-tilt, equator-facing plane.
    let cos_incidence = (decl.cos() * h.cos()).max(0.0);
    let beam_gain = (cos_incidence / sin_elev).min(MAX_BEAM_GAIN);
    let sky_view = (1.0 + lat.cos()) / 2.0;
    beam_h * beam_gain + diffuse_h * sky_view
}

/// Integrates the clear-sky GHI over a window `[start_min, end_min]` of the
/// local solar day, returning kWh/m².
pub fn clear_sky_insolation_kwh(
    latitude_deg: f64,
    day_of_year: u32,
    start_min: u32,
    end_min: u32,
) -> f64 {
    let mut wh = 0.0;
    for minute in start_min..end_min {
        wh += clear_sky_ghi(latitude_deg, day_of_year, minute as f64 + 0.5) / 60.0;
    }
    wh / 1000.0
}

/// Integrates the clear-sky plane-of-array irradiance over a window,
/// returning kWh/m².
pub fn clear_sky_poa_insolation_kwh(
    latitude_deg: f64,
    day_of_year: u32,
    start_min: u32,
    end_min: u32,
) -> f64 {
    let mut wh = 0.0;
    for minute in start_min..end_min {
        wh += clear_sky_poa(latitude_deg, day_of_year, minute as f64 + 0.5) / 60.0;
    }
    wh / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const PHOENIX_LAT: f64 = 33.45;

    #[test]
    fn declination_extremes_near_solstices() {
        // Summer solstice ≈ day 172: near +23.45°.
        assert!((declination(172).to_degrees() - 23.45).abs() < 0.2);
        // Winter solstice ≈ day 355: near −23.45°.
        assert!((declination(355).to_degrees() + 23.45).abs() < 0.2);
        // Equinox ≈ day 81: near 0°.
        assert!(declination(81).to_degrees().abs() < 1.0);
    }

    #[test]
    fn hour_angle_zero_at_solar_noon() {
        assert!(hour_angle(720.0).abs() < 1e-12);
        assert!((hour_angle(780.0).to_degrees() - 15.0).abs() < 1e-9);
        assert!((hour_angle(660.0).to_degrees() + 15.0).abs() < 1e-9);
    }

    #[test]
    fn noon_elevation_higher_in_summer() {
        let jan = sin_elevation(PHOENIX_LAT.to_radians(), declination(15), 0.0);
        let jul = sin_elevation(PHOENIX_LAT.to_radians(), declination(196), 0.0);
        assert!(jul > jan);
        assert!(jan > 0.0);
    }

    #[test]
    fn clear_sky_peaks_at_noon_and_vanishes_at_night() {
        let noon = clear_sky_ghi(PHOENIX_LAT, 196, 720.0);
        let morning = clear_sky_ghi(PHOENIX_LAT, 196, 480.0);
        let midnight = clear_sky_ghi(PHOENIX_LAT, 196, 0.0);
        assert!(noon > morning);
        assert!(morning > 0.0);
        assert_eq!(midnight, 0.0);
        // Summer noon in Phoenix: ~1 kW/m² clear sky.
        assert!(noon > 950.0 && noon < 1100.0, "noon GHI = {noon}");
    }

    #[test]
    fn haurwitz_is_monotone_in_elevation() {
        let mut prev = -1.0;
        for step in 0..=10 {
            let s = step as f64 / 10.0;
            let g = haurwitz_clear_sky(s);
            assert!(g >= prev);
            prev = g;
        }
        assert_eq!(haurwitz_clear_sky(-0.5), 0.0);
    }

    #[test]
    fn daily_insolation_ordering_summer_over_winter() {
        let jan = clear_sky_insolation_kwh(PHOENIX_LAT, 15, 0, 1440);
        let jul = clear_sky_insolation_kwh(PHOENIX_LAT, 196, 0, 1440);
        assert!(jul > jan);
        // Sanity: Phoenix clear-sky day is 4–9 kWh/m².
        assert!(jan > 3.0 && jan < 6.5, "jan = {jan}");
        assert!(jul > 6.5 && jul < 9.5, "jul = {jul}");
    }

    #[test]
    fn tilted_panel_boosts_winter_harvest() {
        // Latitude tilt trades a little summer for a lot of winter.
        let jan_ghi = clear_sky_insolation_kwh(PHOENIX_LAT, 15, 0, 1440);
        let jan_poa = clear_sky_poa_insolation_kwh(PHOENIX_LAT, 15, 0, 1440);
        assert!(jan_poa > 1.25 * jan_ghi, "poa {jan_poa} vs ghi {jan_ghi}");
        let jul_ghi = clear_sky_insolation_kwh(PHOENIX_LAT, 196, 0, 1440);
        let jul_poa = clear_sky_poa_insolation_kwh(PHOENIX_LAT, 196, 0, 1440);
        assert!((jul_poa / jul_ghi - 1.0).abs() < 0.15);
    }

    #[test]
    fn poa_is_zero_at_night_and_positive_at_noon() {
        assert_eq!(clear_sky_poa(PHOENIX_LAT, 15, 0.0), 0.0);
        assert!(clear_sky_poa(PHOENIX_LAT, 15, 720.0) > 500.0);
    }
}
