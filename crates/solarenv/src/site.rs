//! The four evaluated geographic sites (Table 2 of the paper) and their
//! per-season weather characteristics.

use std::fmt;

use crate::season::Season;
use crate::weather::WeatherProfile;

/// Solar energy resource potential bands from Table 2 (NREL GIS maps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolarPotential {
    /// > 6.0 kWh/m²/day on average (e.g. Phoenix, AZ).
    Excellent,
    /// 5.0–6.0 kWh/m²/day (e.g. Golden, CO).
    Good,
    /// 4.0–5.0 kWh/m²/day (e.g. Elizabeth City, NC).
    Moderate,
    /// < 4.0 kWh/m²/day (e.g. Oak Ridge, TN).
    Low,
}

impl SolarPotential {
    /// Classifies an average daily insolation into its Table 2 band.
    pub fn classify(kwh_per_m2_day: f64) -> Self {
        if kwh_per_m2_day > 6.0 {
            SolarPotential::Excellent
        } else if kwh_per_m2_day >= 5.0 {
            SolarPotential::Good
        } else if kwh_per_m2_day >= 4.0 {
            SolarPotential::Moderate
        } else {
            SolarPotential::Low
        }
    }
}

impl fmt::Display for SolarPotential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolarPotential::Excellent => "Excellent",
            SolarPotential::Good => "Good",
            SolarPotential::Moderate => "Moderate",
            SolarPotential::Low => "Low",
        };
        f.write_str(s)
    }
}

/// A measurement site: name, station code, latitude, target potential band,
/// and per-season weather statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    name: &'static str,
    station: &'static str,
    latitude_deg: f64,
    potential: SolarPotential,
}

impl Site {
    /// Phoenix, AZ (MIDC station "PFCI"): excellent potential, > 6 kWh/m²/day.
    pub fn phoenix_az() -> Self {
        Self {
            name: "Phoenix, AZ",
            station: "AZ",
            latitude_deg: 33.45,
            potential: SolarPotential::Excellent,
        }
    }

    /// Golden, CO (MIDC station "BMS"): good potential, 5–6 kWh/m²/day.
    pub fn golden_co() -> Self {
        Self {
            name: "Golden, CO",
            station: "CO",
            latitude_deg: 39.74,
            potential: SolarPotential::Good,
        }
    }

    /// Elizabeth City, NC (MIDC station "ECSU"): moderate potential,
    /// 4–5 kWh/m²/day.
    pub fn elizabeth_city_nc() -> Self {
        Self {
            name: "Elizabeth City, NC",
            station: "NC",
            latitude_deg: 36.30,
            potential: SolarPotential::Moderate,
        }
    }

    /// Oak Ridge, TN (MIDC station "ORNL"): low potential, < 4 kWh/m²/day.
    pub fn oak_ridge_tn() -> Self {
        Self {
            name: "Oak Ridge, TN",
            station: "TN",
            latitude_deg: 35.93,
            potential: SolarPotential::Low,
        }
    }

    /// All four evaluation sites, in the paper's order (AZ, CO, NC, TN).
    pub fn all() -> Vec<Site> {
        vec![
            Site::phoenix_az(),
            Site::golden_co(),
            Site::elizabeth_city_nc(),
            Site::oak_ridge_tn(),
        ]
    }

    /// Full human-readable name, e.g. `"Phoenix, AZ"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Short code used in tables and experiment output, e.g. `"AZ"`.
    pub fn code(&self) -> &'static str {
        self.station
    }

    /// Site latitude in degrees north.
    pub fn latitude_deg(&self) -> f64 {
        self.latitude_deg
    }

    /// The Table 2 potential band this site is calibrated to.
    pub fn potential(&self) -> SolarPotential {
        self.potential
    }

    /// The cloud/weather statistics for one season at this site.
    ///
    /// Calibrated so seasonal averages land in the Table 2 kWh/m²/day band
    /// and so that Jan @ AZ is a "regular" pattern while Jul @ AZ (monsoon
    /// season) is "irregular" (Figures 13 vs 14 of the paper).
    pub fn weather_profile(&self, season: Season) -> WeatherProfile {
        use Season::*;
        // (clear, scattered, broken, overcast) stationary weights,
        // mean regime dwell in minutes, and clearness jitter scale.
        let (weights, dwell, jitter) = match (self.station, season) {
            // Phoenix: desert — high clearness; July monsoon brings short,
            // violent variability.
            ("AZ", Jan) => ([0.90, 0.07, 0.02, 0.01], 55.0, 0.6),
            ("AZ", Apr) => ([0.80, 0.13, 0.05, 0.02], 30.0, 0.9),
            ("AZ", Jul) => ([0.60, 0.23, 0.11, 0.06], 9.0, 1.4),
            ("AZ", Oct) => ([0.85, 0.09, 0.04, 0.02], 40.0, 0.8),
            // Golden: good but with frequent afternoon convection.
            ("CO", Jan) => ([0.62, 0.22, 0.10, 0.06], 28.0, 1.0),
            ("CO", Apr) => ([0.55, 0.25, 0.12, 0.08], 18.0, 1.1),
            ("CO", Jul) => ([0.62, 0.23, 0.10, 0.05], 14.0, 1.0),
            ("CO", Oct) => ([0.60, 0.22, 0.11, 0.07], 22.0, 1.0),
            // Elizabeth City: coastal moderate; April fronts are the paper's
            // worst tracking-error case (22 % in Table 7).
            ("NC", Jan) => ([0.42, 0.28, 0.18, 0.12], 16.0, 1.1),
            ("NC", Apr) => ([0.22, 0.26, 0.28, 0.24], 6.0, 1.6),
            ("NC", Jul) => ([0.48, 0.28, 0.15, 0.09], 20.0, 0.8),
            ("NC", Oct) => ([0.30, 0.27, 0.24, 0.19], 9.0, 1.3),
            // Oak Ridge: low potential, persistent cloud decks.
            ("TN", Jan) => ([0.24, 0.26, 0.27, 0.23], 18.0, 1.0),
            ("TN", Apr) => ([0.13, 0.21, 0.31, 0.35], 7.0, 1.5),
            ("TN", Jul) => ([0.24, 0.28, 0.27, 0.21], 12.0, 1.2),
            ("TN", Oct) => ([0.15, 0.23, 0.30, 0.32], 8.0, 1.4),
            _ => ([0.5, 0.25, 0.15, 0.10], 20.0, 1.0),
        };
        #[allow(clippy::expect_used)]
        // lint:allow(panic): compile-time-constant site climatology, pinned by a unit test
        WeatherProfile::new(weights, dwell, jitter).expect("static site profiles are valid")
    }

    /// Daily ambient temperature range `(min, max)` in °C for one season,
    /// approximating climate normals for the site.
    pub fn temperature_range(&self, season: Season) -> (f64, f64) {
        use Season::*;
        match (self.station, season) {
            ("AZ", Jan) => (5.0, 19.0),
            ("AZ", Apr) => (15.0, 30.0),
            ("AZ", Jul) => (28.0, 41.0),
            ("AZ", Oct) => (17.0, 31.0),
            ("CO", Jan) => (-8.0, 4.0),
            ("CO", Apr) => (2.0, 16.0),
            ("CO", Jul) => (15.0, 31.0),
            ("CO", Oct) => (3.0, 18.0),
            ("NC", Jan) => (0.0, 10.0),
            ("NC", Apr) => (9.0, 21.0),
            ("NC", Jul) => (22.0, 31.0),
            ("NC", Oct) => (10.0, 21.0),
            ("TN", Jan) => (-2.0, 8.0),
            ("TN", Apr) => (8.0, 21.0),
            ("TN", Jul) => (20.0, 31.0),
            ("TN", Oct) => (8.0, 21.0),
            _ => (10.0, 25.0),
        }
    }

    /// Deterministic RNG seed for `(site, season, day)` trace generation.
    #[allow(clippy::cast_possible_truncation)] // Season::index() < 12 fits u8
    pub fn trace_seed(&self, season: Season, day: u32) -> u64 {
        // FNV-1a over the identifying tuple; stable across runs/platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self
            .station
            .bytes()
            .chain([season.index() as u8, 0x5a])
            .chain(day.to_le_bytes())
        {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_sites() {
        let sites = Site::all();
        assert_eq!(sites.len(), 4);
        let codes: Vec<&str> = sites.iter().map(|s| s.code()).collect();
        assert_eq!(codes, vec!["AZ", "CO", "NC", "TN"]);
    }

    #[test]
    fn potential_classification_bands() {
        assert_eq!(SolarPotential::classify(6.5), SolarPotential::Excellent);
        assert_eq!(SolarPotential::classify(5.5), SolarPotential::Good);
        assert_eq!(SolarPotential::classify(4.5), SolarPotential::Moderate);
        assert_eq!(SolarPotential::classify(3.5), SolarPotential::Low);
        // Boundary behaviour matches Table 2's "5.0 ~ 6.0" style bands.
        assert_eq!(SolarPotential::classify(5.0), SolarPotential::Good);
        assert_eq!(SolarPotential::classify(4.0), SolarPotential::Moderate);
    }

    #[test]
    fn july_phoenix_is_most_irregular_at_that_site() {
        let az = Site::phoenix_az();
        let jan = az.weather_profile(Season::Jan);
        let jul = az.weather_profile(Season::Jul);
        assert!(jul.mean_dwell_minutes() < jan.mean_dwell_minutes());
        assert!(jul.expected_clearness() < jan.expected_clearness());
    }

    #[test]
    fn site_clearness_ordering_matches_potential() {
        // Average expected clearness across seasons must be ordered
        // AZ > CO > NC > TN, matching Table 2.
        let avg = |site: &Site| -> f64 {
            Season::ALL
                .iter()
                .map(|&s| site.weather_profile(s).expected_clearness())
                .sum::<f64>()
                / 4.0
        };
        let sites = Site::all();
        let vals: Vec<f64> = sites.iter().map(avg).collect();
        assert!(vals[0] > vals[1], "AZ > CO");
        assert!(vals[1] > vals[2], "CO > NC");
        assert!(vals[2] > vals[3], "NC > TN");
    }

    #[test]
    fn temperatures_are_sane() {
        for site in Site::all() {
            for &season in &Season::ALL {
                let (lo, hi) = site.temperature_range(season);
                assert!(lo < hi, "{site} {season}");
                assert!((-20.0..=50.0).contains(&lo));
                assert!((-10.0..=50.0).contains(&hi));
            }
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let az = Site::phoenix_az();
        let s1 = az.trace_seed(Season::Jan, 0);
        let s2 = az.trace_seed(Season::Jan, 0);
        assert_eq!(s1, s2);
        assert_ne!(s1, az.trace_seed(Season::Jan, 1));
        assert_ne!(s1, az.trace_seed(Season::Apr, 0));
        assert_ne!(s1, Site::golden_co().trace_seed(Season::Jan, 0));
    }
}
