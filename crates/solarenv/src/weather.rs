//! Regime-switching cloud model producing per-minute clearness indices.
//!
//! The sky alternates between four cloud regimes (clear → overcast). Regime
//! dwell times are exponentially distributed; within a regime the clearness
//! index follows an AR(1) process around the regime mean, and the emitted
//! series is first-order smoothed to produce realistic ramps rather than
//! square steps. Everything is driven by a caller-supplied RNG so traces are
//! reproducible.

use rand::Rng;

use crate::error::EnvError;

/// A sky condition regime with a characteristic clearness level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloudRegime {
    /// Cloudless sky; clearness ≈ 0.97.
    Clear,
    /// Scattered cumulus; clearness ≈ 0.78 with moderate jitter.
    Scattered,
    /// Broken cloud deck; clearness ≈ 0.45 with heavy jitter.
    Broken,
    /// Full overcast; clearness ≈ 0.12.
    Overcast,
}

impl CloudRegime {
    /// The four regimes from clearest to darkest.
    pub const ALL: [CloudRegime; 4] = [
        CloudRegime::Clear,
        CloudRegime::Scattered,
        CloudRegime::Broken,
        CloudRegime::Overcast,
    ];

    /// Mean clearness index (fraction of clear-sky GHI) of the regime.
    pub fn mean_clearness(self) -> f64 {
        match self {
            CloudRegime::Clear => 0.97,
            CloudRegime::Scattered => 0.78,
            CloudRegime::Broken => 0.45,
            CloudRegime::Overcast => 0.12,
        }
    }

    /// Standard deviation of the within-regime clearness jitter.
    pub fn clearness_sigma(self) -> f64 {
        match self {
            CloudRegime::Clear => 0.015,
            CloudRegime::Scattered => 0.10,
            CloudRegime::Broken => 0.14,
            CloudRegime::Overcast => 0.05,
        }
    }
}

/// Statistical description of a site-season's sky: stationary regime
/// weights, mean regime dwell time, and a jitter multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherProfile {
    weights: [f64; 4],
    mean_dwell_minutes: f64,
    jitter_scale: f64,
}

impl WeatherProfile {
    /// Builds a profile from regime weights (any positive values; they are
    /// normalized), a mean regime dwell in minutes, and a jitter scale.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidProfile`] if the weights do not sum to a
    /// positive value, any weight is negative, the dwell is not positive, or
    /// the jitter scale is negative.
    pub fn new(
        weights: [f64; 4],
        mean_dwell_minutes: f64,
        jitter_scale: f64,
    ) -> Result<Self, EnvError> {
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 || sum.is_nan() || weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return Err(EnvError::InvalidProfile {
                reason: "regime weights must be non-negative and sum > 0",
            });
        }
        if mean_dwell_minutes <= 0.0 || mean_dwell_minutes.is_nan() {
            return Err(EnvError::InvalidProfile {
                reason: "mean dwell must be positive",
            });
        }
        if !(jitter_scale >= 0.0 && jitter_scale.is_finite()) {
            return Err(EnvError::InvalidProfile {
                reason: "jitter scale must be non-negative and finite",
            });
        }
        let mut normalized = weights;
        for w in &mut normalized {
            *w /= sum;
        }
        Ok(Self {
            weights: normalized,
            mean_dwell_minutes,
            jitter_scale,
        })
    }

    /// Normalized stationary regime weights (clear, scattered, broken,
    /// overcast).
    pub fn weights(&self) -> [f64; 4] {
        self.weights
    }

    /// Mean regime dwell time in minutes. Shorter dwell ⇒ more "irregular"
    /// weather (Figure 14 of the paper).
    pub fn mean_dwell_minutes(&self) -> f64 {
        self.mean_dwell_minutes
    }

    /// Jitter multiplier applied to the per-regime clearness sigma.
    pub fn jitter_scale(&self) -> f64 {
        self.jitter_scale
    }

    /// Expectation of the clearness index under the stationary regime
    /// distribution — the calibration knob for Table 2's insolation bands.
    pub fn expected_clearness(&self) -> f64 {
        self.weights
            .iter()
            .zip(CloudRegime::ALL)
            .map(|(w, r)| w * r.mean_clearness())
            .sum()
    }

    /// Samples a regime from the stationary distribution.
    fn sample_regime<R: Rng + ?Sized>(&self, rng: &mut R) -> CloudRegime {
        let mut u: f64 = rng.gen::<f64>();
        for (w, regime) in self.weights.iter().zip(CloudRegime::ALL) {
            if u < *w {
                return regime;
            }
            u -= w;
        }
        CloudRegime::Overcast
    }
}

/// Stateful per-minute clearness process. Create once per day trace and call
/// [`CloudProcess::step`] per simulated minute.
#[derive(Debug, Clone)]
pub struct CloudProcess {
    profile: WeatherProfile,
    regime: CloudRegime,
    minutes_left: f64,
    ar_state: f64,
    smoothed: f64,
}

/// AR(1) persistence of the within-regime jitter.
const AR_RHO: f64 = 0.92;

/// First-order smoothing factor of the emitted clearness (ramp realism).
const SMOOTH_ALPHA: f64 = 0.35;

impl CloudProcess {
    /// Initializes the process in a stationary-sampled regime.
    pub fn new<R: Rng + ?Sized>(profile: WeatherProfile, rng: &mut R) -> Self {
        let regime = profile.sample_regime(rng);
        let minutes_left = sample_dwell(profile.mean_dwell_minutes, rng);
        Self {
            profile,
            regime,
            minutes_left,
            ar_state: 0.0,
            smoothed: regime.mean_clearness(),
        }
    }

    /// The currently active regime.
    pub fn regime(&self) -> CloudRegime {
        self.regime
    }

    /// Advances one minute and returns the clearness index in `[0.02, 1.05]`.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.minutes_left -= 1.0;
        if self.minutes_left <= 0.0 {
            self.regime = self.profile.sample_regime(rng);
            self.minutes_left = sample_dwell(self.profile.mean_dwell_minutes, rng);
        }
        let sigma = self.regime.clearness_sigma() * self.profile.jitter_scale();
        let eps: f64 = standard_normal(rng);
        self.ar_state = AR_RHO * self.ar_state + (1.0 - AR_RHO * AR_RHO).sqrt() * sigma * eps;
        let target = (self.regime.mean_clearness() + self.ar_state).clamp(0.02, 1.05);
        self.smoothed += SMOOTH_ALPHA * (target - self.smoothed);
        self.smoothed.clamp(0.02, 1.05)
    }
}

/// Exponentially distributed dwell with the given mean, floored at 1 minute.
fn sample_dwell<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (-u.ln() * mean).max(1.0)
}

/// Standard normal via Box–Muller (avoids a distribution-crate dependency).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn profile() -> WeatherProfile {
        WeatherProfile::new([0.5, 0.25, 0.15, 0.10], 20.0, 1.0).unwrap()
    }

    #[test]
    fn profile_normalizes_weights() {
        let p = WeatherProfile::new([2.0, 1.0, 1.0, 0.0], 10.0, 1.0).unwrap();
        let w = p.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn profile_rejects_bad_inputs() {
        assert!(WeatherProfile::new([0.0; 4], 10.0, 1.0).is_err());
        assert!(WeatherProfile::new([1.0, -0.1, 0.0, 0.0], 10.0, 1.0).is_err());
        assert!(WeatherProfile::new([1.0; 4], 0.0, 1.0).is_err());
        assert!(WeatherProfile::new([1.0; 4], 10.0, -1.0).is_err());
        assert!(WeatherProfile::new([f64::NAN, 1.0, 1.0, 1.0], 10.0, 1.0).is_err());
    }

    #[test]
    fn expected_clearness_is_weighted_mean() {
        let p = WeatherProfile::new([1.0, 0.0, 0.0, 0.0], 10.0, 1.0).unwrap();
        assert!((p.expected_clearness() - 0.97).abs() < 1e-12);
        let p = WeatherProfile::new([0.0, 0.0, 0.0, 1.0], 10.0, 1.0).unwrap();
        assert!((p.expected_clearness() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn process_output_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut proc = CloudProcess::new(profile(), &mut rng);
        for _ in 0..2000 {
            let kt = proc.step(&mut rng);
            assert!((0.02..=1.05).contains(&kt), "kt = {kt}");
        }
    }

    #[test]
    fn process_is_deterministic_for_a_seed() {
        let run = |seed: u64| -> Vec<f64> {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut proc = CloudProcess::new(profile(), &mut rng);
            (0..200).map(|_| proc.step(&mut rng)).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn long_run_mean_tracks_expected_clearness() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let p = profile();
        let mut proc = CloudProcess::new(p, &mut rng);
        let n = 120_000;
        let mean: f64 = (0..n).map(|_| proc.step(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - p.expected_clearness()).abs() < 0.06,
            "mean {mean} vs expected {}",
            p.expected_clearness()
        );
    }

    #[test]
    fn shorter_dwell_means_more_volatility() {
        let volatility = |dwell: f64| -> f64 {
            let p = WeatherProfile::new([0.4, 0.25, 0.2, 0.15], dwell, 1.0).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut proc = CloudProcess::new(p, &mut rng);
            let series: Vec<f64> = (0..20_000).map(|_| proc.step(&mut rng)).collect();
            series.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (series.len() - 1) as f64
        };
        assert!(volatility(5.0) > 1.5 * volatility(60.0));
    }

    #[test]
    fn dwell_sampling_has_roughly_correct_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| sample_dwell(20.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 20.0).abs() < 1.0, "mean dwell {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
