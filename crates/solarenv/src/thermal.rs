//! Ambient and PV cell temperature models.

use pv::units::{Celsius, Irradiance};

/// Nominal operating cell temperature (NOCT) of a typical polycrystalline
/// module, in °C. The BP3180N datasheet lists 47 ± 2 °C.
pub const NOCT_CELSIUS: f64 = 47.0;

/// Diurnal ambient temperature for a `(min, max)` daily range, peaking at
/// 15:00 and bottoming out near 03:00 (a standard sinusoidal profile).
pub fn ambient_temperature(range: (f64, f64), minute_of_day: u32) -> Celsius {
    let (lo, hi) = range;
    let phase = std::f64::consts::TAU * (minute_of_day as f64 - 900.0) / 1440.0;
    // cos(phase) = 1 at 15:00 (minute 900), −1 at 03:00 (minute 180).
    Celsius::new(lo + (hi - lo) * 0.5 * (1.0 + phase.cos()))
}

/// PV cell temperature from ambient temperature and plane-of-array
/// irradiance using the NOCT relation
/// `T_cell = T_amb + (NOCT − 20) / 800 · G`.
pub fn cell_temperature(ambient: Celsius, irradiance: Irradiance) -> Celsius {
    Celsius::new(ambient.get() + (NOCT_CELSIUS - 20.0) / 800.0 * irradiance.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_peaks_mid_afternoon() {
        let range = (10.0, 30.0);
        let at_peak = ambient_temperature(range, 900);
        let at_trough = ambient_temperature(range, 180);
        assert!((at_peak.get() - 30.0).abs() < 1e-9);
        assert!((at_trough.get() - 10.0).abs() < 1e-9);
        let morning = ambient_temperature(range, 450);
        assert!(morning > at_trough && morning < at_peak);
    }

    #[test]
    fn cell_runs_hotter_under_sun() {
        let amb = Celsius::new(25.0);
        let full_sun = cell_temperature(amb, Irradiance::new(800.0));
        // At 800 W/m² the NOCT relation gives T_amb + (47−20) = +27 °C.
        assert!((full_sun.get() - 52.0).abs() < 1e-9);
        let dark = cell_temperature(amb, Irradiance::ZERO);
        assert_eq!(dark, amb);
    }

    #[test]
    fn cell_temperature_is_linear_in_irradiance() {
        let amb = Celsius::new(20.0);
        let t1 = cell_temperature(amb, Irradiance::new(400.0));
        let t2 = cell_temperature(amb, Irradiance::new(800.0));
        let rise1 = t1.get() - amb.get();
        let rise2 = t2.get() - amb.get();
        assert!((rise2 - 2.0 * rise1).abs() < 1e-9);
    }
}
