//! Day-length environment traces: per-minute irradiance and temperature.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pv::cell::CellEnv;
use pv::units::{Celsius, Irradiance};

use crate::error::EnvError;
use crate::geometry;
use crate::season::Season;
use crate::site::Site;
use crate::thermal;
use crate::weather::CloudProcess;

/// Start of the paper's daytime evaluation window: 07:30 (minute 450).
pub const DAY_START_MINUTE: u32 = 450;

/// End of the paper's daytime evaluation window: 17:30 (minute 1050).
pub const DAY_END_MINUTE: u32 = 1050;

/// One per-minute environment sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvSample {
    /// Minutes after local midnight.
    pub minute_of_day: u32,
    /// Global horizontal irradiance reaching the panel.
    pub irradiance: Irradiance,
    /// Ambient air temperature.
    pub ambient: Celsius,
    /// PV cell temperature (NOCT relation).
    pub cell_temperature: Celsius,
}

impl EnvSample {
    /// The [`CellEnv`] (irradiance + cell temperature) the PV model needs.
    pub fn cell_env(&self) -> CellEnv {
        CellEnv::new(self.irradiance, self.cell_temperature)
    }
}

/// A generated environment trace for one site, season and day.
///
/// # Examples
///
/// ```
/// use solarenv::{Site, Season, EnvTrace};
///
/// let t = EnvTrace::generate(&Site::oak_ridge_tn(), Season::Oct, 3);
/// // Traces are deterministic per (site, season, day).
/// let t2 = EnvTrace::generate(&Site::oak_ridge_tn(), Season::Oct, 3);
/// assert_eq!(t.samples()[0], t2.samples()[0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnvTrace {
    site_code: &'static str,
    season: Season,
    day: u32,
    samples: Vec<EnvSample>,
}

impl EnvTrace {
    /// Generates the paper's daytime window (07:30–17:30 inclusive) for one
    /// site, season and day index. Deterministic per input tuple.
    #[allow(clippy::expect_used)]
    pub fn generate(site: &Site, season: Season, day: u32) -> Self {
        Self::generate_window(site, season, day, DAY_START_MINUTE, DAY_END_MINUTE)
            // lint:allow(panic): compile-time-constant window bounds
            .expect("static daytime window is valid")
    }

    /// Generates a full civil day (00:00–24:00), used for Table 2 daily
    /// insolation statistics.
    #[allow(clippy::expect_used)]
    pub fn generate_full_day(site: &Site, season: Season, day: u32) -> Self {
        // lint:allow(panic): compile-time-constant window bounds
        Self::generate_window(site, season, day, 0, 1439).expect("full-day window is valid")
    }

    /// Generates an arbitrary `[start, end]` window (minutes after local
    /// midnight, inclusive, 1-minute steps).
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidWindow`] if `start > end` or `end > 1439`.
    pub fn generate_window(
        site: &Site,
        season: Season,
        day: u32,
        start: u32,
        end: u32,
    ) -> Result<Self, EnvError> {
        if start > end || end > 1439 {
            return Err(EnvError::InvalidWindow { start, end });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(site.trace_seed(season, day));
        let profile = site.weather_profile(season);
        let mut clouds = CloudProcess::new(profile, &mut rng);
        let day_of_year = season.day_of_year();
        let temp_range = site.temperature_range(season);

        // Warm the cloud process up from midnight so the window start is not
        // biased by the initial state (and so different windows of the same
        // day agree statistically).
        for _ in 0..start {
            clouds.step(&mut rng);
        }

        let samples = (start..=end)
            .map(|minute| {
                let kt = clouds.step(&mut rng);
                let clear =
                    geometry::clear_sky_poa(site.latitude_deg(), day_of_year, minute as f64 + 0.5);
                let irradiance = Irradiance::new(clear * kt);
                let ambient = thermal::ambient_temperature(temp_range, minute);
                let cell_temperature = thermal::cell_temperature(ambient, irradiance);
                EnvSample {
                    minute_of_day: minute,
                    irradiance,
                    ambient,
                    cell_temperature,
                }
            })
            .collect();

        Ok(Self {
            site_code: site.code(),
            season,
            day,
            samples,
        })
    }

    /// Site code this trace was generated for (e.g. `"AZ"`).
    pub fn site_code(&self) -> &'static str {
        self.site_code
    }

    /// Season this trace was generated for.
    pub fn season(&self) -> Season {
        self.season
    }

    /// Day index within the site-season (different indices ⇒ different
    /// weather realizations).
    pub fn day(&self) -> u32 {
        self.day
    }

    /// The per-minute samples, ordered by time.
    pub fn samples(&self) -> &[EnvSample] {
        &self.samples
    }

    /// Looks up the sample at an absolute minute-of-day, if in window.
    pub fn sample_at(&self, minute_of_day: u32) -> Option<&EnvSample> {
        let first = self.samples.first()?.minute_of_day;
        let idx = minute_of_day.checked_sub(first)? as usize;
        self.samples.get(idx)
    }

    /// Integrated insolation over the trace window in kWh/m².
    pub fn insolation_kwh_m2(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.irradiance.get() / 60.0)
            .sum::<f64>()
            / 1000.0
    }

    /// Peak irradiance over the window.
    pub fn peak_irradiance(&self) -> Irradiance {
        self.samples
            .iter()
            .map(|s| s.irradiance)
            .fold(Irradiance::ZERO, Irradiance::max)
    }

    /// Scales each sample's irradiance by `factor(minute_of_day)` and
    /// recomputes the cell temperature from the (unchanged) ambient via the
    /// NOCT relation — the environment-side fault seam for transients
    /// beyond the cloud model (e.g. an irradiance cliff).
    ///
    /// Factors are clamped to be non-negative and non-finite factors are
    /// treated as `1.0` (identity), so a buggy transform cannot produce an
    /// unphysical trace. A transform returning `1.0` everywhere leaves the
    /// trace bit-identical.
    #[allow(clippy::float_cmp)] // exact 1.0 check is the bit-transparency fast path
    pub fn scale_irradiance<F: Fn(u32) -> f64>(&mut self, factor: F) {
        for sample in &mut self.samples {
            let f = factor(sample.minute_of_day);
            let f = if f.is_finite() { f.max(0.0) } else { 1.0 };
            if f == 1.0 {
                continue;
            }
            sample.irradiance = sample.irradiance * f;
            sample.cell_temperature = thermal::cell_temperature(sample.ambient, sample.irradiance);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_irradiance_identity_is_bit_transparent() {
        let base = EnvTrace::generate(&Site::phoenix_az(), Season::Jul, 0);
        let mut scaled = base.clone();
        scaled.scale_irradiance(|_| 1.0);
        assert_eq!(base, scaled);
        // Non-finite factors are treated as identity too.
        scaled.scale_irradiance(|_| f64::NAN);
        assert_eq!(base, scaled);
    }

    #[test]
    fn scale_irradiance_recomputes_cell_temperature() {
        let base = EnvTrace::generate(&Site::phoenix_az(), Season::Jul, 0);
        let mut cliff = base.clone();
        cliff.scale_irradiance(|m| if m >= 720 { 0.25 } else { 1.0 });
        let b = base.sample_at(800).unwrap();
        let c = cliff.sample_at(800).unwrap();
        assert!((c.irradiance.get() - 0.25 * b.irradiance.get()).abs() < 1e-12);
        assert_eq!(c.ambient, b.ambient);
        // Less irradiance heats the cell less.
        assert!(c.cell_temperature < b.cell_temperature);
        // Before the cliff, untouched.
        assert_eq!(base.sample_at(700).unwrap(), cliff.sample_at(700).unwrap());
    }

    #[test]
    fn daytime_window_has_601_minutes() {
        let t = EnvTrace::generate(&Site::phoenix_az(), Season::Jan, 0);
        assert_eq!(t.samples().len(), 601);
        assert_eq!(t.samples()[0].minute_of_day, 450);
        assert_eq!(t.samples().last().unwrap().minute_of_day, 1050);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = EnvTrace::generate(&Site::golden_co(), Season::Apr, 2);
        let b = EnvTrace::generate(&Site::golden_co(), Season::Apr, 2);
        assert_eq!(a, b);
        let c = EnvTrace::generate(&Site::golden_co(), Season::Apr, 3);
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let site = Site::phoenix_az();
        assert!(EnvTrace::generate_window(&site, Season::Jan, 0, 900, 450).is_err());
        assert!(EnvTrace::generate_window(&site, Season::Jan, 0, 0, 2000).is_err());
    }

    #[test]
    fn irradiance_is_bounded_by_physics() {
        for site in Site::all() {
            for &season in &Season::ALL {
                let t = EnvTrace::generate(&site, season, 0);
                for s in t.samples() {
                    assert!(s.irradiance.get() >= 0.0);
                    assert!(s.irradiance.get() < 1250.0, "{} {}", site, season);
                }
            }
        }
    }

    #[test]
    fn cell_runs_hotter_than_ambient_in_daylight() {
        let t = EnvTrace::generate(&Site::phoenix_az(), Season::Jul, 0);
        for s in t.samples() {
            if s.irradiance.get() > 1.0 {
                assert!(s.cell_temperature > s.ambient);
            }
        }
    }

    #[test]
    fn sample_lookup_by_minute() {
        let t = EnvTrace::generate(&Site::phoenix_az(), Season::Jan, 0);
        assert_eq!(t.sample_at(450).unwrap().minute_of_day, 450);
        assert_eq!(t.sample_at(720).unwrap().minute_of_day, 720);
        assert!(t.sample_at(449).is_none());
        assert!(t.sample_at(1051).is_none());
    }

    #[test]
    fn phoenix_summer_outshines_oak_ridge_winter() {
        let az = EnvTrace::generate(&Site::phoenix_az(), Season::Jul, 0);
        let tn = EnvTrace::generate(&Site::oak_ridge_tn(), Season::Jan, 0);
        assert!(az.insolation_kwh_m2() > tn.insolation_kwh_m2());
    }

    #[test]
    fn full_day_contains_daytime_window_energy() {
        let site = Site::phoenix_az();
        let day = EnvTrace::generate_full_day(&site, Season::Apr, 0);
        let window = EnvTrace::generate(&site, Season::Apr, 0);
        assert!(day.insolation_kwh_m2() >= window.insolation_kwh_m2() * 0.95);
        assert_eq!(day.samples().len(), 1440);
    }

    #[test]
    fn peak_irradiance_reasonable_for_sunny_summer() {
        let t = EnvTrace::generate(&Site::phoenix_az(), Season::Jul, 0);
        let peak = t.peak_irradiance();
        assert!(peak.get() > 600.0, "peak {peak}");
    }
}
