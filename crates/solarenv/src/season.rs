//! The four evaluation seasons of the paper (mid-Jan/Apr/Jul/Oct 2009).

use std::fmt;

/// One of the four representative months used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Season {
    /// Mid-January (winter).
    Jan,
    /// Mid-April (spring).
    Apr,
    /// Mid-July (summer).
    Jul,
    /// Mid-October (autumn).
    Oct,
}

impl Season {
    /// All four seasons, in the paper's order.
    pub const ALL: [Season; 4] = [Season::Jan, Season::Apr, Season::Jul, Season::Oct];

    /// Representative day of year (the 15th of the month, as the paper uses
    /// "the middle of Jan., Apr., Jul. and Oct.").
    pub fn day_of_year(self) -> u32 {
        match self {
            Season::Jan => 15,
            Season::Apr => 105,
            Season::Jul => 196,
            Season::Oct => 288,
        }
    }

    /// Stable index 0..=3 (useful for seeding and table layout).
    pub fn index(self) -> usize {
        match self {
            Season::Jan => 0,
            Season::Apr => 1,
            Season::Jul => 2,
            Season::Oct => 3,
        }
    }
}

impl fmt::Display for Season {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Season::Jan => "Jan",
            Season::Apr => "Apr",
            Season::Jul => "Jul",
            Season::Oct => "Oct",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn days_of_year_are_mid_month() {
        assert_eq!(Season::Jan.day_of_year(), 15);
        assert_eq!(Season::Apr.day_of_year(), 105);
        assert_eq!(Season::Jul.day_of_year(), 196);
        assert_eq!(Season::Oct.day_of_year(), 288);
    }

    #[test]
    fn indices_are_unique_and_ordered() {
        let idx: Vec<usize> = Season::ALL.iter().map(|s| s.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Season::Jul.to_string(), "Jul");
    }
}
