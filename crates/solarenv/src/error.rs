//! Error types for the `solarenv` crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing weather profiles or traces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnvError {
    /// A weather profile had out-of-range statistics.
    InvalidProfile {
        /// Which constraint was violated.
        reason: &'static str,
    },
    /// A trace window was empty or inverted.
    InvalidWindow {
        /// Window start, minutes after midnight.
        start: u32,
        /// Window end, minutes after midnight.
        end: u32,
    },
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::InvalidProfile { reason } => write!(f, "invalid weather profile: {reason}"),
            EnvError::InvalidWindow { start, end } => {
                write!(f, "invalid trace window [{start}, {end}] minutes")
            }
        }
    }
}

impl Error for EnvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = EnvError::InvalidWindow {
            start: 900,
            end: 450,
        };
        assert!(e.to_string().contains("900"));
        let e = EnvError::InvalidProfile { reason: "x" };
        assert!(e.to_string().contains("x"));
    }
}
