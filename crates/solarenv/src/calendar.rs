//! Year-scale calendar: the twelve civil months and day-range iteration.
//!
//! The paper evaluates four representative months (mid-Jan/Apr/Jul/Oct,
//! [`Season`]); the campaign engine sweeps all twelve. Each [`Month`] maps
//! to its nearest evaluated season — the *anchor approximation*: December,
//! January and February share January's climatology and solar geometry,
//! March–May share April's, and so on. What distinguishes the months of one
//! anchor from each other is the *weather realization*: every month owns a
//! disjoint block of day indices ([`Month::day_base`]), so `Feb` day 3 and
//! `Jan` day 3 drive the same clear-sky envelope through different seeded
//! cloud processes. All iteration here is lazy — a [`DayRange`] generates
//! one [`EnvTrace`] at a time, so a year-scale campaign never holds more
//! than the in-flight day's trace in memory.
//!
//! ```
//! use solarenv::{DayRange, Month, Season, Site};
//!
//! assert_eq!(Month::Feb.anchor(), Season::Jan);
//! let range = DayRange::new(Month::Feb, 2);
//! let traces: Vec<_> = range.traces(&Site::phoenix_az()).collect();
//! assert_eq!(traces.len(), 2);
//! assert_eq!(traces[0].samples().len(), 601);
//! ```

use std::fmt;

use crate::season::Season;
use crate::site::Site;
use crate::trace::EnvTrace;

/// Width of each month's private day-index block. Wider than any plausible
/// `days_per_month`, so realizations never collide across months.
const DAY_BLOCK: u32 = 31;

/// One of the twelve civil months, anchored to the paper's four seasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Month {
    /// January (anchor: [`Season::Jan`]).
    Jan,
    /// February (anchor: [`Season::Jan`]).
    Feb,
    /// March (anchor: [`Season::Apr`]).
    Mar,
    /// April (anchor: [`Season::Apr`]).
    Apr,
    /// May (anchor: [`Season::Apr`]).
    May,
    /// June (anchor: [`Season::Jul`]).
    Jun,
    /// July (anchor: [`Season::Jul`]).
    Jul,
    /// August (anchor: [`Season::Jul`]).
    Aug,
    /// September (anchor: [`Season::Oct`]).
    Sep,
    /// October (anchor: [`Season::Oct`]).
    Oct,
    /// November (anchor: [`Season::Oct`]).
    Nov,
    /// December (anchor: [`Season::Jan`]).
    Dec,
}

impl Month {
    /// All twelve months in calendar order.
    pub const ALL: [Month; 12] = [
        Month::Jan,
        Month::Feb,
        Month::Mar,
        Month::Apr,
        Month::May,
        Month::Jun,
        Month::Jul,
        Month::Aug,
        Month::Sep,
        Month::Oct,
        Month::Nov,
        Month::Dec,
    ];

    /// Stable calendar index 0 (Jan) ..= 11 (Dec).
    pub fn index(self) -> usize {
        match self {
            Month::Jan => 0,
            Month::Feb => 1,
            Month::Mar => 2,
            Month::Apr => 3,
            Month::May => 4,
            Month::Jun => 5,
            Month::Jul => 6,
            Month::Aug => 7,
            Month::Sep => 8,
            Month::Oct => 9,
            Month::Nov => 10,
            Month::Dec => 11,
        }
    }

    /// The evaluated season this month borrows climatology and geometry
    /// from (the anchor approximation described at module level).
    pub fn anchor(self) -> Season {
        match self {
            Month::Dec | Month::Jan | Month::Feb => Season::Jan,
            Month::Mar | Month::Apr | Month::May => Season::Apr,
            Month::Jun | Month::Jul | Month::Aug => Season::Jul,
            Month::Sep | Month::Oct | Month::Nov => Season::Oct,
        }
    }

    /// First day index of this month's private realization block. Day `d`
    /// of the month is realization `day_base() + d` under the anchor
    /// season, so distinct months never reuse a weather realization.
    #[allow(clippy::cast_possible_truncation)]
    pub fn day_base(self) -> u32 {
        // index() ≤ 11, so the product fits comfortably in u32.
        (self.index() as u32) * DAY_BLOCK
    }

    /// Parses a month name (`"Jan"` .. `"Dec"`, case-sensitive).
    pub fn from_name(name: &str) -> Option<Month> {
        Month::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// The month's canonical three-letter name.
    pub fn name(self) -> &'static str {
        match self {
            Month::Jan => "Jan",
            Month::Feb => "Feb",
            Month::Mar => "Mar",
            Month::Apr => "Apr",
            Month::May => "May",
            Month::Jun => "Jun",
            Month::Jul => "Jul",
            Month::Aug => "Aug",
            Month::Sep => "Sep",
            Month::Oct => "Oct",
            Month::Nov => "Nov",
            Month::Dec => "Dec",
        }
    }

    /// Parses an inclusive month range like `"Jan-Dec"` or a single month
    /// name, returning the months in calendar order. Wrapping ranges
    /// (`"Nov-Feb"`) are rejected; returns `None` on any unknown name.
    ///
    /// ```
    /// use solarenv::Month;
    ///
    /// let q2 = Month::parse_range("Apr-Jun").unwrap();
    /// assert_eq!(q2, vec![Month::Apr, Month::May, Month::Jun]);
    /// assert_eq!(Month::parse_range("Jul").unwrap(), vec![Month::Jul]);
    /// assert!(Month::parse_range("Nov-Feb").is_none());
    /// ```
    pub fn parse_range(spec: &str) -> Option<Vec<Month>> {
        match spec.split_once('-') {
            None => Month::from_name(spec).map(|m| vec![m]),
            Some((lo, hi)) => {
                let lo = Month::from_name(lo)?;
                let hi = Month::from_name(hi)?;
                if lo.index() > hi.index() {
                    return None;
                }
                Some(Month::ALL[lo.index()..=hi.index()].to_vec())
            }
        }
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A lazy run of consecutive simulated days within one month.
///
/// Iteration yields the anchor-season day indices (for seeding and for
/// [`EnvTrace::generate`]) or the traces themselves; nothing is
/// materialized up front, so memory stays O(1) in the range length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayRange {
    month: Month,
    days: u32,
}

impl DayRange {
    /// A range of `days` consecutive realizations in `month`, clamped to
    /// the month's private block so ranges never bleed into the next month.
    pub fn new(month: Month, days: u32) -> DayRange {
        DayRange {
            month,
            days: days.min(DAY_BLOCK),
        }
    }

    /// The month this range lives in.
    pub fn month(self) -> Month {
        self.month
    }

    /// Number of days in the range.
    pub fn len(self) -> u32 {
        self.days
    }

    /// Whether the range is empty.
    pub fn is_empty(self) -> bool {
        self.days == 0
    }

    /// The anchor-season day indices, in chronological order.
    ///
    /// ```
    /// use solarenv::{DayRange, Month};
    ///
    /// let days: Vec<u32> = DayRange::new(Month::Feb, 3).day_indices().collect();
    /// assert_eq!(days, vec![31, 32, 33]); // Feb's block starts at 1 * 31
    /// ```
    pub fn day_indices(self) -> impl Iterator<Item = u32> {
        let base = self.month.day_base();
        (0..self.days).map(move |d| base + d)
    }

    /// Lazily generates the daytime irradiance/temperature trace for each
    /// day in the range at `site`, under the month's anchor season.
    pub fn traces(self, site: &Site) -> impl Iterator<Item = EnvTrace> + '_ {
        let season = self.month.anchor();
        self.day_indices()
            .map(move |day| EnvTrace::generate(site, season, day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_partition_the_year() {
        let mut per_season = [0usize; 4];
        for m in Month::ALL {
            per_season[m.anchor().index()] += 1;
        }
        assert_eq!(per_season, [3, 3, 3, 3]);
    }

    #[test]
    fn indices_are_calendar_ordered_and_unique() {
        let idx: Vec<usize> = Month::ALL.iter().map(|m| m.index()).collect();
        assert_eq!(idx, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn day_blocks_are_disjoint() {
        for a in Month::ALL {
            for b in Month::ALL {
                if a == b {
                    continue;
                }
                let block_a: Vec<u32> = DayRange::new(a, DAY_BLOCK).day_indices().collect();
                let block_b: Vec<u32> = DayRange::new(b, DAY_BLOCK).day_indices().collect();
                assert!(block_a.iter().all(|d| !block_b.contains(d)));
            }
        }
    }

    #[test]
    fn january_day_zero_matches_season_realization() {
        // Month::Jan is the identity embedding of the paper's Season::Jan.
        assert_eq!(Month::Jan.day_base(), 0);
        assert_eq!(Month::Jan.anchor(), Season::Jan);
    }

    #[test]
    fn parse_round_trips_names() {
        for m in Month::ALL {
            assert_eq!(Month::from_name(&m.to_string()), Some(m));
        }
        assert_eq!(Month::from_name("January"), None);
    }

    #[test]
    fn parse_range_full_year() {
        let year = Month::parse_range("Jan-Dec").unwrap();
        assert_eq!(year, Month::ALL.to_vec());
    }

    #[test]
    fn parse_range_rejects_wrapping_and_unknown() {
        assert!(Month::parse_range("Nov-Feb").is_none());
        assert!(Month::parse_range("Jan-Smarch").is_none());
        assert!(Month::parse_range("").is_none());
    }

    #[test]
    fn ranges_clamp_to_block_width() {
        let r = DayRange::new(Month::Mar, 99);
        assert_eq!(r.len(), DAY_BLOCK);
    }

    #[test]
    fn traces_match_direct_generation() {
        let site = Site::golden_co();
        let range = DayRange::new(Month::Feb, 2);
        let via_range: Vec<EnvTrace> = range.traces(&site).collect();
        for (i, day) in range.day_indices().enumerate() {
            let direct = EnvTrace::generate(&site, Season::Jan, day);
            assert_eq!(
                via_range[i].insolation_kwh_m2().to_bits(),
                direct.insolation_kwh_m2().to_bits()
            );
        }
    }
}
