//! Aggregate insolation statistics (Table 2 of the paper).

use crate::season::Season;
use crate::site::{Site, SolarPotential};
use crate::trace::EnvTrace;

/// Average full-day insolation in kWh/m²/day for a site, averaged over the
/// four seasons and `days_per_season` weather realizations.
pub fn average_daily_insolation(site: &Site, days_per_season: u32) -> f64 {
    assert!(days_per_season > 0, "need at least one day per season");
    let mut total = 0.0;
    let mut count = 0;
    for &season in &Season::ALL {
        for day in 0..days_per_season {
            total += EnvTrace::generate_full_day(site, season, day).insolation_kwh_m2();
            count += 1;
        }
    }
    total / count as f64
}

/// Classifies a site by simulating its average daily insolation; the result
/// should match [`Site::potential`] (verified in tests — this is the Table 2
/// calibration check).
pub fn measured_potential(site: &Site, days_per_season: u32) -> SolarPotential {
    SolarPotential::classify(average_daily_insolation(site, days_per_season))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_land_in_their_table2_bands() {
        for site in Site::all() {
            let kwh = average_daily_insolation(&site, 5);
            let measured = measured_potential(&site, 5);
            assert_eq!(
                measured,
                site.potential(),
                "{} measured {kwh:.2} kWh/m²/day → {measured}, expected {}",
                site.name(),
                site.potential()
            );
        }
    }

    #[test]
    fn insolation_ordering_matches_paper() {
        let sites = Site::all();
        let vals: Vec<f64> = sites
            .iter()
            .map(|s| average_daily_insolation(s, 3))
            .collect();
        assert!(vals[0] > vals[1], "AZ {} > CO {}", vals[0], vals[1]);
        assert!(vals[1] > vals[2], "CO {} > NC {}", vals[1], vals[2]);
        assert!(vals[2] > vals[3], "NC {} > TN {}", vals[2], vals[3]);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_panics() {
        let _ = average_daily_insolation(&Site::phoenix_az(), 0);
    }
}
