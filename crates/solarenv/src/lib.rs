//! Solar-environment substrate for the SolarCore reproduction.
//!
//! The paper drives its experiments with real meteorological traces from
//! NREL's Measurement and Instrumentation Data Center (MIDC): daytime
//! (07:30–17:30) irradiance and temperature for four U.S. sites with
//! different solar potentials (Table 2) across four seasons (mid-January,
//! April, July and October 2009).
//!
//! We have no network access to NREL, so this crate synthesizes equivalent
//! traces: a clear-sky irradiance envelope from solar geometry (declination,
//! hour angle, elevation, Haurwitz clear-sky model), modulated by a seeded
//! regime-switching cloud process calibrated so that each site lands in its
//! Table 2 kWh/m²/day band and reproduces the paper's "regular" (Jan @ AZ)
//! vs "irregular" (Jul @ AZ) weather patterns. All generation is
//! deterministic given `(site, season, day)`.
//!
//! # Quick start
//!
//! ```
//! use solarenv::{Site, Season, EnvTrace};
//!
//! let trace = EnvTrace::generate(&Site::phoenix_az(), Season::Jan, 0);
//! assert_eq!(trace.samples().len(), 601); // 07:30..=17:30, minute steps
//! assert!(trace.insolation_kwh_m2() > 1.5);
//! ```
//!
//! ## Panic policy
//!
//! Non-test code in this crate must not panic on recoverable conditions:
//! `unwrap`/`expect`/`panic!` are denied by the gate below and by
//! `cargo xtask lint`; justified sites carry an explicit allow + waiver.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![cfg_attr(test, allow(clippy::float_cmp))] // unit tests assert exact constructed values

pub mod calendar;
pub mod error;
pub mod geometry;
pub mod season;
pub mod site;
pub mod stats;
pub mod thermal;
pub mod trace;
pub mod weather;

pub use calendar::{DayRange, Month};
pub use error::EnvError;
pub use season::Season;
pub use site::{Site, SolarPotential};
pub use trace::{EnvSample, EnvTrace, DAY_END_MINUTE, DAY_START_MINUTE};
pub use weather::{CloudRegime, WeatherProfile};
