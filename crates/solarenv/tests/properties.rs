//! Property-based tests of the solar-environment substrate.

use proptest::prelude::*;

use solarenv::{EnvTrace, Season, Site, WeatherProfile};

fn arb_site() -> impl Strategy<Value = Site> {
    (0usize..4).prop_map(|i| Site::all().swap_remove(i))
}

fn arb_season() -> impl Strategy<Value = Season> {
    (0usize..4).prop_map(|i| Season::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any window of any site-season-day is physically bounded and
    /// regenerates identically.
    #[test]
    fn windows_are_bounded_and_deterministic(
        site in arb_site(),
        season in arb_season(),
        day in 0u32..50,
        start in 0u32..1200,
        len in 0u32..200,
    ) {
        let end = (start + len).min(1439);
        let a = EnvTrace::generate_window(&site, season, day, start, end).unwrap();
        let b = EnvTrace::generate_window(&site, season, day, start, end).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.samples().len(), (end - start + 1) as usize);
        for s in a.samples() {
            prop_assert!(s.irradiance.get() >= 0.0);
            prop_assert!(s.irradiance.get() < 1300.0);
            prop_assert!((-30.0..=60.0).contains(&s.ambient.get()));
            prop_assert!(s.cell_temperature >= s.ambient);
        }
    }

    /// Different days of the same site-season are different weather
    /// realizations (with overwhelming probability), but share the same
    /// clear-sky envelope (equal trace length and window).
    #[test]
    fn day_index_varies_the_weather(site in arb_site(), season in arb_season(), day in 0u32..100) {
        let a = EnvTrace::generate(&site, season, day);
        let b = EnvTrace::generate(&site, season, day + 1);
        prop_assert_eq!(a.samples().len(), b.samples().len());
        prop_assert_ne!(a, b);
    }

    /// Weather-profile normalization is idempotent and its expected
    /// clearness stays within the regime extremes.
    #[test]
    fn profile_statistics_are_consistent(
        w in proptest::collection::vec(0.01..10.0_f64, 4),
        dwell in 1.0..120.0_f64,
        jitter in 0.0..2.0_f64,
    ) {
        let p = WeatherProfile::new([w[0], w[1], w[2], w[3]], dwell, jitter).unwrap();
        let sum: f64 = p.weights().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let e = p.expected_clearness();
        prop_assert!((0.12..=0.97).contains(&e));
    }

    /// Insolation is additive over sub-windows.
    #[test]
    fn insolation_is_additive(site in arb_site(), season in arb_season(), day in 0u32..20) {
        let whole = EnvTrace::generate_window(&site, season, day, 450, 1050).unwrap();
        let first = EnvTrace::generate_window(&site, season, day, 450, 749).unwrap();
        let second = EnvTrace::generate_window(&site, season, day, 750, 1050).unwrap();
        let sum = first.insolation_kwh_m2() + second.insolation_kwh_m2();
        prop_assert!(
            (whole.insolation_kwh_m2() - sum).abs() < 1e-9,
            "{} vs {}",
            whole.insolation_kwh_m2(),
            sum
        );
    }
}
