//! Runtime physics sanitizer: cheap conservation-law checks wired into the
//! simulation hot paths.
//!
//! Three invariant layers guard this workspace (see `DESIGN.md`):
//! compile-time unit newtypes, the `cargo xtask lint` passes, and — this
//! module — runtime checks for properties only a running simulation can
//! witness. Every check states a law of the modelled physics:
//!
//! * **power sanity** — powers are finite and non-negative;
//! * **budget conservation** — power drawn from the array never exceeds
//!   the MPP oracle budget (nothing harvests more than the sun offers);
//! * **conversion losses** — the DC/DC converter delivers
//!   `P_out = η · P_in` with `η ≤ 1` (no free energy);
//! * **bus sanity** — the load-bus voltage stays inside its physically
//!   reachable range `[0, Voc / k_min]`.
//!
//! Checks are active in debug builds (`debug_assertions`) and in release
//! builds compiled with the `sanitize` feature, which also enables the
//! operating-point solver checks inside `powertrain`. In plain release
//! builds every function compiles to nothing.

use pv::units::{Volts, Watts};

/// `true` when the sanitizer checks are compiled in.
pub const fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "sanitize"))
}

/// Absolute slack (watts) tolerated on power-conservation comparisons —
/// covers bisection resolution and discrete-step quantization, orders of
/// magnitude below the ~0.05 W tuning granularity that matters.
pub const POWER_SLACK_W: f64 = 0.5;

/// Asserts a power is finite and non-negative.
///
/// # Panics
///
/// Panics (when [`enabled`]) if `power` is NaN, infinite or negative.
#[track_caller]
pub fn assert_power(stage: &str, power: Watts) {
    if enabled() {
        let p = power.get();
        assert!(
            p.is_finite() && p >= 0.0,
            "physics invariant violated at {stage}: power {power} is not a \
             finite non-negative quantity"
        );
    }
}

/// Asserts budget conservation: `drawn ≤ budget + slack`.
///
/// # Panics
///
/// Panics (when [`enabled`]) if more power is drawn than the oracle budget
/// offers — the simulated chip would be running on energy that the array
/// never produced.
#[track_caller]
pub fn assert_budget(stage: &str, drawn: Watts, budget: Watts) {
    if enabled() {
        assert_power(stage, drawn);
        assert_power(stage, budget);
        assert!(
            drawn.get() <= budget.get() + POWER_SLACK_W,
            "physics invariant violated at {stage}: drew {drawn} against a \
             budget of {budget} (conservation of energy)"
        );
    }
}

/// Asserts the converter relation `P_out = η · P_in` within slack, with
/// `0 < η ≤ 1`.
///
/// # Panics
///
/// Panics (when [`enabled`]) if the output side carries more power than
/// the derated input — the converter would be creating energy.
#[track_caller]
pub fn assert_conversion(stage: &str, input: Watts, output: Watts, efficiency: f64) {
    if enabled() {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "physics invariant violated at {stage}: conversion efficiency \
             {efficiency} outside (0, 1]"
        );
        assert_power(stage, input);
        assert_power(stage, output);
        assert!(
            (output.get() - efficiency * input.get()).abs() <= POWER_SLACK_W,
            "physics invariant violated at {stage}: output {output} is not \
             η·input = {:.3} W (η = {efficiency})",
            efficiency * input.get(),
        );
    }
}

/// Asserts the load-bus voltage sits in its physically reachable range
/// `[0, ceiling]` (the ceiling is `Voc / k_min` for a converter-coupled
/// panel).
///
/// # Panics
///
/// Panics (when [`enabled`]) if the voltage is non-finite, negative, or
/// above the ceiling — all signatures of a diverged operating-point solve.
#[track_caller]
pub fn assert_bus_voltage(stage: &str, voltage: Volts, ceiling: Volts) {
    if enabled() {
        let v = voltage.get();
        assert!(
            // lint:allow(dim): 1e-9 is an absolute nanovolt tolerance on a volt compare
            v.is_finite() && v >= 0.0 && v <= ceiling.get() + 1e-9,
            "physics invariant violated at {stage}: bus voltage {voltage} \
             outside the reachable range [0 V, {ceiling}]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Debug test builds always have the checks on.
    #[test]
    fn checks_are_enabled_in_debug_builds() {
        assert!(enabled());
    }

    #[test]
    fn valid_quantities_pass_silently() {
        assert_power("test", Watts::new(42.0));
        assert_power("test", Watts::ZERO);
        assert_budget("test", Watts::new(99.9), Watts::new(100.0));
        assert_budget("test", Watts::new(100.2), Watts::new(100.0)); // slack
        assert_conversion("test", Watts::new(100.0), Watts::new(95.0), 0.95);
        assert_bus_voltage("test", Volts::new(12.0), Volts::new(56.0));
    }

    #[test]
    #[should_panic(expected = "conservation of energy")]
    fn corrupted_budget_trips_the_sanitizer() {
        assert_budget("test", Watts::new(120.0), Watts::new(100.0));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_power_trips_the_sanitizer() {
        assert_power("test", Watts::new(-1.0));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn nan_power_trips_the_sanitizer() {
        assert_power("test", Watts::new(f64::NAN));
    }

    #[test]
    #[should_panic(expected = "is not η·input")]
    fn over_unity_converter_trips_the_sanitizer() {
        // 100 W in, 99 W out at η = 0.95 — 4 W appear from nowhere.
        assert_conversion("test", Watts::new(100.0), Watts::new(99.0), 0.95);
    }

    #[test]
    #[should_panic(expected = "reachable range")]
    fn runaway_bus_voltage_trips_the_sanitizer() {
        assert_bus_voltage("test", Volts::new(80.0), Volts::new(56.0));
    }
}
