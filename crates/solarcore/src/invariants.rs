//! Runtime physics sanitizer: cheap conservation-law checks wired into the
//! simulation hot paths.
//!
//! Three invariant layers guard this workspace (see `DESIGN.md`):
//! compile-time unit newtypes, the `cargo xtask lint` passes, and — this
//! module — runtime checks for properties only a running simulation can
//! witness. Every check states a law of the modelled physics:
//!
//! * **power sanity** — powers are finite and non-negative;
//! * **budget conservation** — power drawn from the array never exceeds
//!   the MPP oracle budget (nothing harvests more than the sun offers);
//! * **conversion losses** — the DC/DC converter delivers
//!   `P_out = η · P_in` with `η ≤ 1` (no free energy);
//! * **bus sanity** — the load-bus voltage stays inside its physically
//!   reachable range `[0, Voc / k_min]`.
//!
//! Checks are active in debug builds (`debug_assertions`) and in release
//! builds compiled with the `sanitize` feature, which also enables the
//! operating-point solver checks inside `powertrain`. In plain release
//! builds every function compiles to nothing.

use pv::units::{Volts, Watts};

/// `true` when the sanitizer checks are compiled in.
pub const fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "sanitize"))
}

/// Absolute slack (watts) tolerated on power-conservation comparisons —
/// covers bisection resolution and discrete-step quantization, orders of
/// magnitude below the ~0.05 W tuning granularity that matters.
pub const POWER_SLACK_W: f64 = 0.5;

/// The numeric ranges of the SolarCore platform, exported as plain
/// constants so tooling can consume them without linking the simulation.
///
/// These are the authoritative seed values for the `cargo xtask flow`
/// interval analysis: the range pass learns them from this file (token
/// level, no compilation) and cross-checks the V/F entries against the
/// `VF_POINTS` ladder in `archsim::dvfs` at analysis time, so the two
/// can never drift silently. The unit tests below pin every constant to
/// the runtime structure it summarizes — edit those structures and the
/// tests (then the analyzer) point here.
pub mod bounds {
    /// Lowest VID-ladder core voltage, volts (`VfLevel` index 0).
    pub const VDD_MIN_V: f64 = 0.95;
    /// Highest VID-ladder core voltage, volts (`VfLevel` index 5).
    pub const VDD_MAX_V: f64 = 1.45;
    /// Lowest ladder clock frequency, GHz.
    pub const FREQ_MIN_GHZ: f64 = 1.0;
    /// Highest ladder clock frequency, GHz.
    pub const FREQ_MAX_GHZ: f64 = 2.5;
    /// Lowest reachable DC/DC transfer ratio of the SolarCore converter.
    pub const RATIO_K_MIN: f64 = 0.8;
    /// Highest reachable DC/DC transfer ratio of the SolarCore converter.
    pub const RATIO_K_MAX: f64 = 8.0;
    /// Transfer-ratio step granularity Δk.
    pub const RATIO_K_STEP: f64 = 0.05;
    /// Converter efficiency ceiling: η ∈ (0, `EFFICIENCY_MAX`].
    pub const EFFICIENCY_MAX: f64 = 1.0;
}

/// Asserts a power is finite and non-negative.
///
/// # Panics
///
/// Panics (when [`enabled`]) if `power` is NaN, infinite or negative.
#[track_caller]
pub fn assert_power(stage: &str, power: Watts) {
    if enabled() {
        let p = power.get();
        assert!(
            p.is_finite() && p >= 0.0,
            "physics invariant violated at {stage}: power {power} is not a \
             finite non-negative quantity"
        );
    }
}

/// Asserts budget conservation: `drawn ≤ budget + slack`.
///
/// # Panics
///
/// Panics (when [`enabled`]) if more power is drawn than the oracle budget
/// offers — the simulated chip would be running on energy that the array
/// never produced.
#[track_caller]
pub fn assert_budget(stage: &str, drawn: Watts, budget: Watts) {
    if enabled() {
        assert_power(stage, drawn);
        assert_power(stage, budget);
        assert!(
            drawn.get() <= budget.get() + POWER_SLACK_W,
            "physics invariant violated at {stage}: drew {drawn} against a \
             budget of {budget} (conservation of energy)"
        );
    }
}

/// Asserts the converter relation `P_out = η · P_in` within slack, with
/// `0 < η ≤ 1`.
///
/// # Panics
///
/// Panics (when [`enabled`]) if the output side carries more power than
/// the derated input — the converter would be creating energy.
#[track_caller]
pub fn assert_conversion(stage: &str, input: Watts, output: Watts, efficiency: f64) {
    if enabled() {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "physics invariant violated at {stage}: conversion efficiency \
             {efficiency} outside (0, 1]"
        );
        assert_power(stage, input);
        assert_power(stage, output);
        assert!(
            (output.get() - efficiency * input.get()).abs() <= POWER_SLACK_W,
            "physics invariant violated at {stage}: output {output} is not \
             η·input = {:.3} W (η = {efficiency})",
            efficiency * input.get(),
        );
    }
}

/// Asserts the load-bus voltage sits in its physically reachable range
/// `[0, ceiling]` (the ceiling is `Voc / k_min` for a converter-coupled
/// panel).
///
/// # Panics
///
/// Panics (when [`enabled`]) if the voltage is non-finite, negative, or
/// above the ceiling — all signatures of a diverged operating-point solve.
#[track_caller]
pub fn assert_bus_voltage(stage: &str, voltage: Volts, ceiling: Volts) {
    if enabled() {
        let v = voltage.get();
        assert!(
            // lint:allow(dim): 1e-9 is an absolute nanovolt tolerance on a volt compare
            v.is_finite() && v >= 0.0 && v <= ceiling.get() + 1e-9,
            "physics invariant violated at {stage}: bus voltage {voltage} \
             outside the reachable range [0 V, {ceiling}]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Debug test builds always have the checks on.
    #[test]
    fn checks_are_enabled_in_debug_builds() {
        assert!(enabled());
    }

    #[test]
    fn valid_quantities_pass_silently() {
        assert_power("test", Watts::new(42.0));
        assert_power("test", Watts::ZERO);
        assert_budget("test", Watts::new(99.9), Watts::new(100.0));
        assert_budget("test", Watts::new(100.2), Watts::new(100.0)); // slack
        assert_conversion("test", Watts::new(100.0), Watts::new(95.0), 0.95);
        assert_bus_voltage("test", Volts::new(12.0), Volts::new(56.0));
    }

    #[test]
    #[should_panic(expected = "conservation of energy")]
    fn corrupted_budget_trips_the_sanitizer() {
        assert_budget("test", Watts::new(120.0), Watts::new(100.0));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_power_trips_the_sanitizer() {
        assert_power("test", Watts::new(-1.0));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn nan_power_trips_the_sanitizer() {
        assert_power("test", Watts::new(f64::NAN));
    }

    #[test]
    #[should_panic(expected = "is not η·input")]
    fn over_unity_converter_trips_the_sanitizer() {
        // 100 W in, 99 W out at η = 0.95 — 4 W appear from nowhere.
        assert_conversion("test", Watts::new(100.0), Watts::new(99.0), 0.95);
    }

    #[test]
    #[should_panic(expected = "reachable range")]
    fn runaway_bus_voltage_trips_the_sanitizer() {
        assert_bus_voltage("test", Volts::new(80.0), Volts::new(56.0));
    }

    /// `bounds` must mirror the V/F ladder exactly: `cargo xtask flow`
    /// seeds its interval analysis from these constants, so drift would
    /// make the static proofs vacuous.
    #[test]
    fn bounds_pin_the_vf_ladder() {
        use archsim::VfLevel;
        let volts: Vec<f64> = VfLevel::all().map(|l| l.voltage().get()).collect();
        let freqs: Vec<f64> = VfLevel::all().map(|l| l.frequency().to_ghz()).collect();
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(bounds::VDD_MIN_V, min(&volts));
        assert_eq!(bounds::VDD_MAX_V, max(&volts));
        assert_eq!(bounds::FREQ_MIN_GHZ, min(&freqs));
        assert_eq!(bounds::FREQ_MAX_GHZ, max(&freqs));
    }

    /// `bounds` must mirror the SolarCore converter configuration.
    #[test]
    fn bounds_pin_the_converter_range() {
        use powertrain::DcDcConverter;
        let c = DcDcConverter::solarcore_default();
        let (k_min, k_max) = c.ratio_range();
        assert_eq!(bounds::RATIO_K_MIN, k_min);
        assert_eq!(bounds::RATIO_K_MAX, k_max);
        assert_eq!(bounds::RATIO_K_STEP, c.ratio_step());
        assert!(c.efficiency() > 0.0 && c.efficiency() <= bounds::EFFICIENCY_MAX);
    }
}
