//! The SolarCore MPPT controller: three-step tracking with coordinated
//! converter-ratio and load tuning (Section 4.2, Figure 9).
//!
//! Each tracking invocation:
//!
//! 1. **Restore `Vdd`** — bring the load-bus voltage back into the nominal
//!    band by per-core load tuning (supply drift since the last invocation
//!    has pushed it off).
//! 2. **Probe the ratio** — nudge the DC/DC transfer ratio by `+Δk` and
//!    watch the output current: if it *rose*, the operating point is left of
//!    the MPP and the direction is right; if it *fell*, undo twice (net
//!    `−Δk`), resuming the correct direction.
//! 3. **Load match** — increase the multi-core load until the bus voltage
//!    returns to `Vdd`, absorbing the extra power the probe exposed.
//!
//! Steps 2–3 repeat until output power stops improving (the inflection point
//! of Figure 11); a final load-decrease step leaves the power margin the
//! paper uses for robustness.

use std::rc::Rc;

use archsim::MultiCoreChip;
use powertrain::{
    solve_operating_point, solve_operating_point_traced, DcDcConverter, FaultedIvSensor, IvSensor,
    LoadModel, OperatingPoint, SolveStats,
};
use pv::cell::CellEnv;
use pv::generator::PvGenerator;
use pv::units::{Amps, Ohms, Volts};

use crate::adapter::LoadTuner;
use crate::config::ControllerConfig;
use crate::degrade::{DegradeConfig, FaultDetector, ProbeFault};
use crate::error::CoreError;
use crate::invariants;

/// Power-improvement threshold (watts) below which a tuning round counts as
/// stalled.
const IMPROVEMENT_EPS_W: f64 = 0.05;

/// Consecutive stalled rounds before tracking stops (the inflection test).
const STALL_LIMIT: u32 = 2;

/// Iteration cap for each voltage-restoration loop.
const RESTORE_CAP: u32 = 128;

/// Everything one tracking invocation needs to touch.
pub struct TrackingRig<'a> {
    /// The PV source.
    pub array: &'a dyn PvGenerator,
    /// Atmospheric conditions during this invocation.
    pub env: CellEnv,
    /// The tunable DC/DC converter.
    pub converter: &'a mut DcDcConverter,
    /// The multi-core load.
    pub chip: &'a mut MultiCoreChip,
    /// The per-core load adapter.
    pub tuner: &'a mut LoadTuner,
}

/// Diagnostics from one tracking invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrackReport {
    /// k/load tuning rounds executed.
    pub rounds: u32,
    /// Total tuning actions (VID writes + ratio nudges), a proxy for the
    /// controller's real-time cost (the paper reports < 5 ms per tracking).
    pub actions: u32,
    /// Perturbation-direction reversals: probe rounds whose `+Δk` nudge
    /// *lowered* the output current and was undone with a net `−Δk`. High
    /// counts mean the tracker is oscillating around the MPP knee.
    pub reversals: u32,
    /// Output power at the end of tracking, watts.
    pub final_output_power: f64,
    /// Transfer ratio at the end of tracking.
    pub final_ratio: f64,
}

/// The SolarCore MPPT + load-tuning controller.
#[derive(Debug, Clone)]
pub struct SolarCoreController {
    config: ControllerConfig,
    sensor: FaultedIvSensor,
    /// When present, every reading the controller acts on is screened
    /// against the model-based plausibility window (reject / re-sample /
    /// hold-last-good). `None` keeps `observe` on the original unscreened
    /// path, bit-identical to a detector-free controller.
    detector: Option<FaultDetector>,
    /// When attached, every operating-point solve is tallied here (solves,
    /// PV evaluations, Newton iterations) for the telemetry stream. Solves
    /// are bit-identical with or without it.
    solve_stats: Option<Rc<SolveStats>>,
}

impl SolarCoreController {
    /// Builds a controller with ideal (noiseless) I/V sensing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration fails
    /// [`ControllerConfig::validate`].
    pub fn new(config: ControllerConfig) -> Result<Self, CoreError> {
        Self::with_sensor(config, IvSensor::ideal())
    }

    /// Builds a controller whose tuning decisions go through the given
    /// (possibly noisy) I/V sensor pair — the robustness knob for the
    /// sensor-error ablation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration fails
    /// [`ControllerConfig::validate`].
    pub fn with_sensor(config: ControllerConfig, sensor: IvSensor) -> Result<Self, CoreError> {
        Self::with_faulted_sensor(config, FaultedIvSensor::transparent(sensor))
    }

    /// Builds a controller on a [`FaultedIvSensor`] — a sensor wrapped with
    /// an (optionally armed) chaos-scenario fault injector. With a
    /// transparent wrapper this is exactly [`with_sensor`](Self::with_sensor).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration fails
    /// [`ControllerConfig::validate`].
    pub fn with_faulted_sensor(
        config: ControllerConfig,
        sensor: FaultedIvSensor,
    ) -> Result<Self, CoreError> {
        config
            .validate()
            .map_err(|reason| CoreError::InvalidConfig { reason })?;
        Ok(Self {
            config,
            sensor,
            detector: None,
            solve_stats: None,
        })
    }

    /// Arms plausibility-window fault detection: from now on every reading
    /// `observe` forwards is screened (reject / bounded re-sample /
    /// hold-last-good) and [`health_probe`](Self::health_probe) becomes
    /// meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `config` fails
    /// [`DegradeConfig::validate`].
    pub fn enable_detection(&mut self, config: DegradeConfig) -> Result<(), CoreError> {
        self.detector = Some(FaultDetector::new(config)?);
        Ok(())
    }

    /// The armed fault detector, if [`enable_detection`](Self::enable_detection)
    /// was called (for reject/retry counters).
    pub fn detector(&self) -> Option<&FaultDetector> {
        self.detector.as_ref()
    }

    /// Advances the sensor wrapper's fault-injection clock (no-op for a
    /// transparent wrapper).
    pub fn set_sensor_minute(&mut self, minute: u32) {
        self.sensor.set_minute(minute);
    }

    /// The active configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Attaches shared solver-work counters; see
    /// [`powertrain::SolveStats`]. Passing the same handle the engine
    /// snapshots lets a day simulation report per-run solver cost.
    pub fn set_solve_stats(&mut self, stats: Rc<SolveStats>) {
        self.solve_stats = Some(stats);
    }

    /// Solves the electrical operating point and passes the output-side
    /// readings through the I/V sensor — what the controller actually
    /// "sees" when making tuning decisions.
    fn observe(
        &mut self,
        array: &dyn PvGenerator,
        env: CellEnv,
        converter: &DcDcConverter,
        chip: &MultiCoreChip,
    ) -> OperatingPoint {
        let mut op = self.solve(array, env, converter, chip);
        let expected = (op.output_voltage.get(), op.output_current.get());
        let (v, i) = self.sensor.measure(op.output_voltage, op.output_current);
        match self.detector.as_mut() {
            None => {
                op.output_voltage = v;
                op.output_current = i;
            }
            Some(detector) => {
                // Disjoint field borrow: the re-sample closure needs the
                // sensor while the detector screens.
                let sensor = &mut self.sensor;
                let (sv, si) = detector.screen((v.get(), i.get()), expected, || {
                    let (rv, ri) = sensor.measure(Volts::new(expected.0), Amps::new(expected.1));
                    (rv.get(), ri.get())
                });
                op.output_voltage = Volts::new(sv);
                op.output_current = Amps::new(si);
            }
        }
        op
    }

    /// One per-minute sensing health probe: solves the modeled operating
    /// point, takes a single sensor reading and asks the detector whether
    /// it is faulty (and why). Returns `None` both for clean readings and
    /// when detection is not armed. The probed reading is evaluated, not
    /// forwarded.
    pub fn health_probe(
        &mut self,
        array: &dyn PvGenerator,
        env: CellEnv,
        converter: &DcDcConverter,
        chip: &MultiCoreChip,
    ) -> Option<ProbeFault> {
        self.detector.as_ref()?;
        let op = self.solve(array, env, converter, chip);
        let expected = (op.output_voltage.get(), op.output_current.get());
        let (v, i) = self.sensor.measure(op.output_voltage, op.output_current);
        self.detector
            .as_mut()
            .and_then(|detector| detector.probe((v.get(), i.get()), expected))
    }

    /// Solves the present electrical operating point: the chip (at its
    /// current DVFS settings and phases) presents `R = Vdd²/P_demand` to
    /// the bus.
    pub fn solve(
        &self,
        array: &dyn PvGenerator,
        env: CellEnv,
        converter: &DcDcConverter,
        chip: &MultiCoreChip,
    ) -> OperatingPoint {
        let demand = chip.total_power().get();
        let load = if demand <= 0.0 {
            LoadModel::Open
        } else {
            let vdd = self.config.nominal_bus_voltage.get();
            LoadModel::Resistance(Ohms::new(vdd * vdd / demand))
        };
        match &self.solve_stats {
            Some(stats) => solve_operating_point_traced(array, env, converter, &load, stats),
            None => solve_operating_point(array, env, converter, &load),
        }
    }

    /// `true` if the bus voltage is outside the event-retrack band and the
    /// controller should run before the next periodic trigger.
    pub fn needs_retrack(&self, op: &OperatingPoint) -> bool {
        let vdd = self.config.nominal_bus_voltage.get();
        (op.output_voltage.get() - vdd).abs() > self.config.retrack_voltage_band * vdd
    }

    /// Runs one full tracking invocation (Figure 9) on the rig.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from the load tuner (scheduler/chip
    /// inconsistencies); physically impossible operating points trip the
    /// [`invariants`] sanitizer instead.
    pub fn track(&mut self, rig: &mut TrackingRig<'_>) -> Result<TrackReport, CoreError> {
        let mut report = TrackReport::default();

        // Step 1: restore the nominal operating voltage.
        report.actions += self.restore_vdd(rig)?;

        let mut stalls = 0;
        for _ in 0..self.config.max_rounds {
            report.rounds += 1;
            let before = self.observe(rig.array, rig.env, rig.converter, rig.chip);

            // Bootstrap: a fully shed load (e.g. everything gated during a
            // lull) draws no current, so neither probe signal works. If the
            // bus is healthy, take load back on first.
            if before.output_current.get() <= 0.0
                && before.output_voltage.get()
                    >= self.config.nominal_bus_voltage.get() * (1.0 - self.config.voltage_tolerance)
                && rig.tuner.increase(rig.chip)?
            {
                report.actions += 1;
                continue;
            }

            // Step 2: probe the transfer ratio.
            let applied = rig.converter.nudge_ratio(1);
            if applied != 0.0 {
                report.actions += 1;
            }
            let probed = self.observe(rig.array, rig.env, rig.converter, rig.chip);
            if probed.output_current < before.output_current {
                // Wrong direction: net −Δk.
                rig.converter.nudge_ratio(-2);
                report.actions += 1;
                report.reversals += 1;
            }

            // Step 3: load-match the output voltage back down to Vdd.
            report.actions += self.match_down_to_vdd(rig)?;

            let after = self.observe(rig.array, rig.env, rig.converter, rig.chip);
            if after.output_power().get() <= before.output_power().get() + IMPROVEMENT_EPS_W {
                stalls += 1;
                if stalls >= STALL_LIMIT {
                    break;
                }
            } else {
                stalls = 0;
            }
        }

        // Leave the robustness power margin, then make sure the bus is not
        // sagging below nominal.
        for _ in 0..self.config.margin_steps {
            if rig.tuner.decrease(rig.chip)? {
                report.actions += 1;
            }
        }
        report.actions += self.lift_sagging_bus(rig)?;

        let final_op = self.solve(rig.array, rig.env, rig.converter, rig.chip);
        if invariants::enabled() {
            // The tracked point can never beat the MPP oracle, and the
            // converter must show its configured losses.
            invariants::assert_budget(
                "controller track",
                final_op.panel_power(),
                rig.array.mpp(rig.env).power,
            );
            invariants::assert_conversion(
                "controller track",
                final_op.panel_power(),
                final_op.output_power(),
                rig.converter.efficiency(),
            );
        }
        report.final_output_power = final_op.output_power().get();
        report.final_ratio = rig.converter.ratio();
        Ok(report)
    }

    /// Step 1: tune load (and, when the load is not the culprit, the
    /// transfer ratio) in whichever direction brings the bus voltage into
    /// the nominal band. Returns tuning actions performed.
    ///
    /// A sagging bus has two distinct causes the controller must tell
    /// apart with only its I/V sensors:
    ///
    /// * **overload** — the operating point was dragged left of the knee;
    ///   shedding load restores the voltage;
    /// * **mis-ratioed converter** — the panel idles near `Voc` but
    ///   `Voc/k < Vdd`; only lowering `k` can lift the bus.
    ///
    /// We discriminate perturb-and-observe style: try `−Δk`; if the bus
    /// voltage improves, keep walking `k` down, otherwise undo and shed
    /// load.
    fn restore_vdd(&mut self, rig: &mut TrackingRig<'_>) -> Result<u32, CoreError> {
        let vdd = self.config.nominal_bus_voltage.get();
        let tol = self.config.voltage_tolerance;
        let mut actions = 0;
        // Discrete load steps can be coarser than the band; a direction
        // reversal means the band is straddled and we are done (limit-cycle
        // guard).
        let mut last_dir = 0i8;
        for _ in 0..RESTORE_CAP {
            let op = self.observe(rig.array, rig.env, rig.converter, rig.chip);
            let v = op.output_voltage.get();
            if v < vdd * (1.0 - tol) {
                let applied = rig.converter.nudge_ratio(-1);
                let probed = self.observe(rig.array, rig.env, rig.converter, rig.chip);
                if applied != 0.0 && probed.output_voltage.get() > v + 1e-9 {
                    // Right of the knee with k too high: keep lowering k.
                    actions += 1;
                    continue;
                }
                if applied != 0.0 {
                    rig.converter.nudge_ratio(1);
                }
                if last_dir == 1 {
                    break;
                }
                // Genuine overload: shed load.
                if !rig.tuner.decrease(rig.chip)? {
                    break;
                }
                last_dir = -1;
            } else if v > vdd * (1.0 + tol) {
                if last_dir == -1 {
                    break;
                }
                // Underloaded: headroom available.
                if !rig.tuner.increase(rig.chip)? {
                    break;
                }
                last_dir = 1;
            } else {
                break;
            }
            actions += 1;
        }
        Ok(actions)
    }

    /// Step 3: increase load until the bus voltage falls back to Vdd.
    fn match_down_to_vdd(&mut self, rig: &mut TrackingRig<'_>) -> Result<u32, CoreError> {
        let vdd = self.config.nominal_bus_voltage.get();
        let tol = self.config.voltage_tolerance;
        let mut actions = 0;
        for _ in 0..RESTORE_CAP {
            let op = self.observe(rig.array, rig.env, rig.converter, rig.chip);
            if op.output_voltage.get() > vdd * (1.0 + tol) {
                if !rig.tuner.increase(rig.chip)? {
                    break;
                }
                actions += 1;
            } else {
                break;
            }
        }
        Ok(actions)
    }

    /// Post-margin safety: never leave the bus below nominal.
    fn lift_sagging_bus(&mut self, rig: &mut TrackingRig<'_>) -> Result<u32, CoreError> {
        let vdd = self.config.nominal_bus_voltage.get();
        let tol = self.config.voltage_tolerance;
        let mut actions = 0;
        for _ in 0..RESTORE_CAP {
            let op = self.observe(rig.array, rig.env, rig.converter, rig.chip);
            if op.output_voltage.get() < vdd * (1.0 - tol) {
                if !rig.tuner.decrease(rig.chip)? {
                    break;
                }
                actions += 1;
            } else {
                break;
            }
        }
        Ok(actions)
    }
}

impl Default for SolarCoreController {
    #[allow(clippy::expect_used)]
    fn default() -> Self {
        // lint:allow(panic): the paper defaults are validated by a unit test
        Self::new(ControllerConfig::paper_defaults()).expect("paper defaults are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use archsim::VfLevel;
    use pv::units::{Celsius, Irradiance};
    use pv::PvArray;
    use workloads::Mix;

    fn rig_parts(mix: Mix) -> (PvArray, DcDcConverter, MultiCoreChip, LoadTuner) {
        let array = PvArray::solarcore_default();
        let converter = DcDcConverter::solarcore_default();
        let mut chip = MultiCoreChip::new(&mix);
        chip.set_all_levels(VfLevel::lowest());
        let tuner = LoadTuner::new(Policy::MpptOpt);
        (array, converter, chip, tuner)
    }

    fn env(g: f64) -> CellEnv {
        CellEnv::new(Irradiance::new(g), Celsius::new(40.0))
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = ControllerConfig::paper_defaults();
        cfg.max_rounds = 0;
        let err = SolarCoreController::new(cfg).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
        assert!(err.to_string().contains("invalid controller configuration"));
    }

    #[test]
    fn tracking_converges_near_the_mpp() {
        let mut controller = SolarCoreController::default();
        let (array, mut converter, mut chip, mut tuner) = rig_parts(Mix::h1());
        let env = env(800.0);
        let mpp = array.mpp(env).power.get();
        let report = controller
            .track(&mut TrackingRig {
                array: &array,
                env,
                converter: &mut converter,
                chip: &mut chip,
                tuner: &mut tuner,
            })
            .unwrap();
        // Within ~12 % of the true MPP (margin + discrete V/F steps).
        assert!(
            report.final_output_power > 0.85 * mpp,
            "tracked {:.1} W of {mpp:.1} W",
            report.final_output_power
        );
        assert!(report.final_output_power <= mpp + 0.5);
        assert!(report.rounds >= 1);
    }

    #[test]
    fn tracking_follows_supply_down_and_up() {
        let mut controller = SolarCoreController::default();
        let (array, mut converter, mut chip, mut tuner) = rig_parts(Mix::hm2());

        let sunny = env(900.0);
        controller
            .track(&mut TrackingRig {
                array: &array,
                env: sunny,
                converter: &mut converter,
                chip: &mut chip,
                tuner: &mut tuner,
            })
            .unwrap();
        let p_sunny = controller
            .solve(&array, sunny, &converter, &chip)
            .panel_power()
            .get();

        let cloudy = env(350.0);
        controller
            .track(&mut TrackingRig {
                array: &array,
                env: cloudy,
                converter: &mut converter,
                chip: &mut chip,
                tuner: &mut tuner,
            })
            .unwrap();
        let op_cloudy = controller.solve(&array, cloudy, &converter, &chip);
        let mpp_cloudy = array.mpp(cloudy).power.get();
        assert!(op_cloudy.panel_power().get() < p_sunny);
        assert!(op_cloudy.panel_power().get() > 0.8 * mpp_cloudy);
        // Bus voltage must not be left sagging.
        assert!(op_cloudy.output_voltage.get() > 12.0 * 0.97);

        // Back up.
        controller
            .track(&mut TrackingRig {
                array: &array,
                env: sunny,
                converter: &mut converter,
                chip: &mut chip,
                tuner: &mut tuner,
            })
            .unwrap();
        let p_again = controller
            .solve(&array, sunny, &converter, &chip)
            .panel_power()
            .get();
        assert!(p_again > 0.85 * array.mpp(sunny).power.get());
    }

    #[test]
    fn margin_keeps_consumption_below_budget() {
        let mut controller = SolarCoreController::default();
        let (array, mut converter, mut chip, mut tuner) = rig_parts(Mix::l1());
        let env = env(500.0); // leaves the chip DVFS headroom around the MPP
        controller
            .track(&mut TrackingRig {
                array: &array,
                env,
                converter: &mut converter,
                chip: &mut chip,
                tuner: &mut tuner,
            })
            .unwrap();
        let op = controller.solve(&array, env, &converter, &chip);
        let mpp = array.mpp(env).power.get();
        assert!(
            op.panel_power().get() <= mpp + 1e-6,
            "cannot exceed the physics"
        );
        // A margin exists: the chip's regulated demand sits strictly below
        // the MPP (the extracted power may ride the flat top of the P-V
        // curve, but the load does not commit to all of it).
        let useful = op.panel_power().get().min(chip.total_power().get());
        assert!(useful < 0.995 * mpp, "useful {useful:.1} vs mpp {mpp:.1}");
    }

    #[test]
    fn dark_panel_tracks_to_zero_without_panicking() {
        let mut controller = SolarCoreController::default();
        let (array, mut converter, mut chip, mut tuner) = rig_parts(Mix::m1());
        let dark = CellEnv::dark(Celsius::new(20.0));
        let report = controller
            .track(&mut TrackingRig {
                array: &array,
                env: dark,
                converter: &mut converter,
                chip: &mut chip,
                tuner: &mut tuner,
            })
            .unwrap();
        assert_eq!(report.final_output_power, 0.0);
    }

    #[test]
    fn tracking_survives_sensor_noise() {
        // A 2 % I/V sensor error must not break convergence (robustness
        // ablation; the paper's margin exists for exactly this reason).
        let cfg = ControllerConfig::paper_defaults();
        let mut controller =
            SolarCoreController::with_sensor(cfg, powertrain::IvSensor::noisy(0.02, 99)).unwrap();
        let (array, mut converter, mut chip, mut tuner) = rig_parts(Mix::hm2());
        let env = env(750.0);
        let report = controller
            .track(&mut TrackingRig {
                array: &array,
                env,
                converter: &mut converter,
                chip: &mut chip,
                tuner: &mut tuner,
            })
            .unwrap();
        let mpp = array.mpp(env).power.get();
        assert!(
            report.final_output_power > 0.75 * mpp,
            "noisy tracking reached {:.1} of {mpp:.1} W",
            report.final_output_power
        );
    }

    #[test]
    fn chip_wide_tracking_also_converges() {
        let mut controller = SolarCoreController::default();
        let array = PvArray::solarcore_default();
        let mut converter = DcDcConverter::solarcore_default();
        let mut chip = MultiCoreChip::new(&Mix::hm2());
        chip.set_all_levels(VfLevel::lowest());
        let mut tuner = LoadTuner::new(Policy::MpptChipWide);
        let env = env(700.0);
        let report = controller
            .track(&mut TrackingRig {
                array: &array,
                env,
                converter: &mut converter,
                chip: &mut chip,
                tuner: &mut tuner,
            })
            .unwrap();
        let mpp = array.mpp(env).power.get();
        // Coarser steps: looser bound than per-core tracking.
        assert!(report.final_output_power > 0.6 * mpp);
    }

    #[test]
    fn needs_retrack_detects_voltage_excursions() {
        let controller = SolarCoreController::default();
        let mut op = OperatingPoint {
            output_voltage: pv::units::Volts::new(12.0),
            ..OperatingPoint::default()
        };
        assert!(!controller.needs_retrack(&op));
        op.output_voltage = pv::units::Volts::new(13.5); // +12.5 %
        assert!(controller.needs_retrack(&op));
        op.output_voltage = pv::units::Volts::new(10.5);
        assert!(controller.needs_retrack(&op));
    }

    #[test]
    fn saturated_chip_leaves_surplus_unharvested() {
        // Tiny load (everything gated except one core at lowest) cannot
        // absorb a full sun; tracking must not crash and must report less
        // than the MPP.
        let mut controller = SolarCoreController::default();
        let (array, mut converter, mut chip, mut tuner) = rig_parts(Mix::l1());
        let env = env(1000.0);
        // Gate 7 cores.
        for id in 1..8 {
            chip.gate(archsim::CoreId(id), true).unwrap();
        }
        let report = controller
            .track(&mut TrackingRig {
                array: &array,
                env,
                converter: &mut converter,
                chip: &mut chip,
                tuner: &mut tuner,
            })
            .unwrap();
        // The tuner is allowed to ungate its *own* gated cores only; these
        // were gated externally, so the load ceiling is low. (The engine
        // never does this; the test pins the no-panic behaviour.)
        assert!(report.final_output_power < array.mpp(env).power.get());
    }
}
