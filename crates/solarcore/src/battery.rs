//! Battery-equipped standalone PV baselines (Table 3 / Section 5).
//!
//! The paper compares SolarCore against battery-buffered MPPT systems whose
//! harvest is derated by the MPPT-controller conversion efficiency and the
//! battery round-trip efficiency: 92 % / 81 % / 70 % overall for
//! high / typical / low-performance systems. The processor then "runs with
//! full speed using stable power supply" until a dynamic power monitor has
//! drained exactly the stored solar energy.

use archsim::MultiCoreChip;
use pv::generator::PvGenerator;
use pv::units::WattHours;
use solarenv::EnvTrace;
use workloads::{Mix, PhaseTrace};

use crate::error::CoreError;

/// Battery-system performance tiers from Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatteryTier {
    /// 97 % MPPT × 95 % battery ⇒ 92 % overall.
    High,
    /// 95 % MPPT × 85 % battery ⇒ ≈81 % overall.
    Typical,
    /// 93 % MPPT × 75 % battery ⇒ ≈70 % overall.
    Low,
}

impl BatteryTier {
    /// MPP-tracking controller conversion efficiency.
    pub fn mppt_efficiency(self) -> f64 {
        match self {
            BatteryTier::High => 0.97,
            BatteryTier::Typical => 0.95,
            BatteryTier::Low => 0.93,
        }
    }

    /// Battery round-trip efficiency.
    pub fn battery_efficiency(self) -> f64 {
        match self {
            BatteryTier::High => 0.95,
            BatteryTier::Typical => 0.85,
            BatteryTier::Low => 0.75,
        }
    }

    /// Overall de-rating factor (product of the two).
    pub fn derating(self) -> f64 {
        self.mppt_efficiency() * self.battery_efficiency()
    }
}

/// An analytically modeled battery-buffered PV system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatterySystem {
    derating: f64,
}

impl BatterySystem {
    /// A system at one of the Table 3 tiers.
    pub fn tier(tier: BatteryTier) -> Self {
        Self {
            derating: tier.derating(),
        }
    }

    /// `Battery-U`: the upper bound of a high-efficiency system (92 %).
    pub fn upper_bound() -> Self {
        Self { derating: 0.92 }
    }

    /// `Battery-L`: the lower bound of a high-efficiency system (81 %).
    pub fn lower_bound() -> Self {
        Self { derating: 0.81 }
    }

    /// A system with an explicit overall de-rating factor.
    ///
    /// # Panics
    ///
    /// Panics unless `derating ∈ (0, 1]`.
    pub fn with_derating(derating: f64) -> Self {
        assert!(
            derating > 0.0 && derating <= 1.0,
            "derating must be in (0, 1]"
        );
        Self { derating }
    }

    /// The overall de-rating factor.
    pub fn derating(&self) -> f64 {
        self.derating
    }

    /// Simulates one day: the battery banks `derating × ideal MPP energy`
    /// over the trace; the chip runs at full speed on that stored energy
    /// until it is gone, accumulating instructions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Arch`] if the chip rejects a simulation step —
    /// an internal phase-trace/chip size mismatch.
    pub fn simulate_day(
        &self,
        array: &dyn PvGenerator,
        trace: &EnvTrace,
        mix: &Mix,
        phase_seed: u64,
    ) -> Result<BatteryDayResult, CoreError> {
        let minutes = trace.samples().len();
        let phases = PhaseTrace::for_mix(mix, phase_seed, minutes);

        // Harvest: optimal MPPT into the battery, derated.
        let ideal_wh: f64 = trace
            .samples()
            .iter()
            .map(|s| array.mpp(s.cell_env()).power.get() / 60.0)
            .sum();
        let stored_wh = ideal_wh * self.derating;

        // Drain: full speed until the stored energy is gone.
        let mut chip = MultiCoreChip::new(mix); // boots at top V/F
        let mut remaining_j = stored_wh * 3600.0;
        let mut powered_minutes = 0.0;
        for t in 0..minutes {
            let mults: Vec<f64> = phases.iter().map(|p| p.at(t)).collect();
            // Probe the draw for this minute before committing.
            let instr_before = chip.total_instructions();
            let energy_before = chip.total_energy().get();
            chip.step(&mults, 60.0)?;
            let used = chip.total_energy().get() - energy_before;
            if used <= remaining_j {
                remaining_j -= used;
                powered_minutes += 1.0;
            } else {
                // Partial final minute: scale the last step's contribution.
                let frac = (remaining_j / used).clamp(0.0, 1.0);
                let instr_this = chip.total_instructions() - instr_before;
                let overcount = instr_this * (1.0 - frac);
                powered_minutes += frac;
                return Ok(BatteryDayResult {
                    stored: WattHours::new(stored_wh),
                    ideal: WattHours::new(ideal_wh),
                    instructions: chip.total_instructions() - overcount,
                    powered_minutes,
                });
            }
        }
        Ok(BatteryDayResult {
            stored: WattHours::new(stored_wh),
            ideal: WattHours::new(ideal_wh),
            instructions: chip.total_instructions(),
            powered_minutes,
        })
    }
}

/// Outcome of a battery-system day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryDayResult {
    /// Solar energy banked after de-rating.
    pub stored: WattHours,
    /// Ideal (un-derated) MPP energy over the window.
    pub ideal: WattHours,
    /// Instructions committed on stored solar energy (the PTP).
    pub instructions: f64,
    /// Minutes the chip ran on battery power.
    pub powered_minutes: f64,
}

impl BatteryDayResult {
    /// Fraction of the ideal solar energy delivered to the chip.
    pub fn utilization(&self) -> f64 {
        if self.ideal.get() <= 0.0 {
            0.0
        } else {
            self.stored / self.ideal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv::PvArray;
    use solarenv::{Season, Site};

    #[test]
    fn table3_derating_factors() {
        assert!((BatteryTier::High.derating() - 0.9215).abs() < 1e-9);
        assert!((BatteryTier::Typical.derating() - 0.8075).abs() < 1e-9);
        assert!((BatteryTier::Low.derating() - 0.6975).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "derating must be in (0, 1]")]
    fn bad_derating_panics() {
        let _ = BatterySystem::with_derating(1.5);
    }

    #[test]
    fn sunny_day_simulation_is_consistent() {
        let array = PvArray::solarcore_default();
        let trace = EnvTrace::generate(&Site::phoenix_az(), Season::Apr, 0);
        let result = BatterySystem::upper_bound()
            .simulate_day(&array, &trace, &Mix::h1(), 42)
            .unwrap();
        assert!((result.utilization() - 0.92).abs() < 1e-9);
        assert!(result.instructions > 0.0);
        assert!(result.powered_minutes > 0.0);
        assert!(result.powered_minutes <= trace.samples().len() as f64);
    }

    #[test]
    fn upper_bound_beats_lower_bound() {
        let array = PvArray::solarcore_default();
        let trace = EnvTrace::generate(&Site::golden_co(), Season::Jul, 1);
        let hi = BatterySystem::upper_bound()
            .simulate_day(&array, &trace, &Mix::hm2(), 7)
            .unwrap();
        let lo = BatterySystem::lower_bound()
            .simulate_day(&array, &trace, &Mix::hm2(), 7)
            .unwrap();
        assert!(hi.instructions > lo.instructions);
        assert!(hi.stored > lo.stored);
        // Roughly proportional to the energy ratio.
        let ratio = hi.instructions / lo.instructions;
        assert!((ratio - 0.92 / 0.81).abs() < 0.05, "ratio {ratio:.3}");
    }

    #[test]
    fn low_epi_mix_runs_longer_on_the_same_energy() {
        let array = PvArray::solarcore_default();
        let trace = EnvTrace::generate(&Site::oak_ridge_tn(), Season::Jan, 0);
        let sys = BatterySystem::tier(BatteryTier::Typical);
        let h1 = sys.simulate_day(&array, &trace, &Mix::h1(), 1).unwrap();
        let l1 = sys.simulate_day(&array, &trace, &Mix::l1(), 1).unwrap();
        assert!(l1.powered_minutes >= h1.powered_minutes);
    }
}
