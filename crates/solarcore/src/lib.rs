//! SolarCore: solar-energy-driven multi-core power management (HPCA 2011).
//!
//! This crate is the paper's contribution: a controller that couples a
//! direct (battery-less) PV array to a multi-core processor and jointly
//!
//! 1. tracks the array's **maximum power point** by co-tuning the DC/DC
//!    converter transfer ratio `k` and the multi-core load `w` (the
//!    three-step algorithm of Section 4.2 / Figure 9), and
//! 2. allocates the time-varying solar budget across cores by
//!    **throughput-power ratio** (TPR), giving V/F steps to the cores that
//!    buy the most instructions per watt (Section 4.3 / Figures 10–12).
//!
//! The crate also implements the paper's comparison points: `Fixed-Power`
//! (constant budget, LP-equivalent greedy allocation), `MPPT&IC`
//! (individual-core-first), `MPPT&RR` (round-robin), and the analytic
//! battery-equipped bounds of Table 3.
//!
//! # Quick start
//!
//! ```
//! use solarcore::{DaySimulation, Policy};
//! use solarenv::{Site, Season};
//! use workloads::Mix;
//!
//! let result = DaySimulation::builder()
//!     .site(Site::phoenix_az())
//!     .season(Season::Jan)
//!     .mix(Mix::hm2())
//!     .policy(Policy::MpptOpt)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(result.utilization() > 0.5);
//! ```
//!
//! ## Panic policy
//!
//! Non-test code in this crate must not panic on recoverable conditions:
//! `unwrap`/`expect`/`panic!` are denied by the gate below and by
//! `cargo xtask lint`; justified sites carry an explicit allow + waiver.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![cfg_attr(test, allow(clippy::float_cmp))] // unit tests assert exact constructed values

pub mod adapter;
pub mod battery;
pub mod config;
pub mod controller;
pub mod degrade;
pub mod engine;
pub mod error;
pub mod invariants;
pub mod metrics;
pub mod policy;
pub mod telemetry;
pub mod tpr;

pub use adapter::LoadTuner;
pub use battery::{BatteryDayResult, BatterySystem, BatteryTier};
pub use config::ControllerConfig;
pub use controller::{SolarCoreController, TrackingRig};
pub use degrade::{DegradationFsm, DegradeConfig, FaultDetector, FsmTransition, ProbeFault};
pub use engine::{DayBatch, DayResult, DaySimulation, MinuteRecord, SimSetup};
pub use error::CoreError;
pub use policy::{LoadScheduler, Policy};
pub use telemetry::{schema, CountingArray, DayInstruments};
pub use tpr::{tpr_table, TprEntry};
