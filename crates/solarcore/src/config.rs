//! Controller configuration (Section 4 / Section 5 operating parameters).

use pv::units::Volts;

/// Tunable parameters of the SolarCore controller.
///
/// Defaults follow the paper: a 12 V processor bus, MPP tracking triggered
/// every 10 minutes, and a one-step load power margin for robustness
/// ("the existence of a power margin is necessary since it improves the
/// robustness of the system", Section 4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Nominal load-bus voltage `Vdd` the converter output is regulated to.
    pub nominal_bus_voltage: Volts,
    /// Relative tolerance around `Vdd` considered "restored" by load
    /// matching (step 1 / step 3 of the tracking algorithm). Must be wide
    /// enough that one discrete V/F load step cannot jump across the whole
    /// band, or load matching would limit-cycle; ±5 % matches a typical
    /// VRM input range.
    pub voltage_tolerance: f64,
    /// Minutes between periodic MPP tracking triggers.
    pub tracking_interval_minutes: u32,
    /// Relative bus-voltage excursion that triggers an *event-driven*
    /// re-track between periodic triggers ("the processor starts tuning its
    /// load when the controller detects a change in PV power supply",
    /// Figure 12).
    pub retrack_voltage_band: f64,
    /// Maximum k/load tuning rounds per tracking invocation.
    pub max_rounds: u32,
    /// Load-decrease steps applied after convergence as a power margin.
    pub margin_steps: u32,
}

impl ControllerConfig {
    /// The paper's configuration.
    pub fn paper_defaults() -> Self {
        Self {
            nominal_bus_voltage: Volts::new(12.0),
            voltage_tolerance: 0.05,
            tracking_interval_minutes: 10,
            retrack_voltage_band: 0.08,
            max_rounds: 60,
            margin_steps: 1,
        }
    }

    /// Validates the configuration, returning a description of the first
    /// violated constraint if any.
    pub fn validate(&self) -> Result<(), &'static str> {
        let vdd = self.nominal_bus_voltage.get();
        if vdd <= 0.0 || vdd.is_nan() {
            return Err("nominal bus voltage must be positive");
        }
        if !(self.voltage_tolerance > 0.0 && self.voltage_tolerance < 0.5) {
            return Err("voltage tolerance must be in (0, 0.5)");
        }
        if self.tracking_interval_minutes == 0 {
            return Err("tracking interval must be at least one minute");
        }
        if self.retrack_voltage_band < self.voltage_tolerance {
            return Err("retrack band must be at least the voltage tolerance");
        }
        if self.max_rounds == 0 {
            return Err("max rounds must be positive");
        }
        Ok(())
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        let cfg = ControllerConfig::paper_defaults();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.nominal_bus_voltage, Volts::new(12.0));
        assert_eq!(cfg.tracking_interval_minutes, 10);
    }

    #[test]
    fn validation_catches_each_violation() {
        let mut cfg = ControllerConfig::paper_defaults();
        cfg.nominal_bus_voltage = Volts::ZERO;
        assert!(cfg.validate().is_err());

        let mut cfg = ControllerConfig::paper_defaults();
        cfg.voltage_tolerance = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = ControllerConfig::paper_defaults();
        cfg.tracking_interval_minutes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ControllerConfig::paper_defaults();
        cfg.retrack_voltage_band = 0.001;
        assert!(cfg.validate().is_err());

        let mut cfg = ControllerConfig::paper_defaults();
        cfg.max_rounds = 0;
        assert!(cfg.validate().is_err());
    }
}
