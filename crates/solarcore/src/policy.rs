//! Load-scheduling policies (Table 6 of the paper).

use std::fmt;

use archsim::{CoreId, MultiCoreChip};
use pv::units::Watts;

use crate::tpr;

/// The evaluated power-management schemes (Table 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Non-tracking scheme with a constant power budget; load allocation is
    /// the LP-equivalent greedy TPR fill.
    ///
    /// Contract: the budget is a finite, non-negative power.
    /// [`DaySimulation::builder`](crate::DaySimulation::builder) rejects
    /// anything else at `build()` time, which is what lets the
    /// `cargo xtask flow` range pass seed this payload as `[0, ∞)` when it
    /// proves the engine's budget-conservation checks.
    FixedPower(Watts),
    /// MPPT with individual-core scheduling: keep tuning one core until it
    /// saturates, then move on.
    MpptIc,
    /// MPPT with round-robin scheduling: spread V/F steps evenly.
    MpptRr,
    /// MPPT with throughput-power-ratio optimization — SolarCore's default.
    MpptOpt,
    /// MPPT with chip-wide (global) DVFS: every running core shares one
    /// V/F setting, as a single-voltage-domain chip would (the paper notes
    /// chip-level DVFS as the fallback when per-core regulators are not
    /// available). Used as an ablation against per-core control.
    MpptChipWide,
}

impl Policy {
    /// Short label used in tables and figures (`Fixed`, `MPPT&IC`, …).
    pub fn label(&self) -> &'static str {
        match self {
            Policy::FixedPower(_) => "Fixed-Power",
            Policy::MpptIc => "MPPT&IC",
            Policy::MpptRr => "MPPT&RR",
            Policy::MpptOpt => "MPPT&Opt",
            Policy::MpptChipWide => "MPPT&Chip",
        }
    }

    /// Builds the scheduler implementing this policy's pick rules.
    /// (`FixedPower` uses the TPR scheduler for its budget fill, matching
    /// the paper's linear-programming optimization.)
    pub fn scheduler(&self) -> Box<dyn LoadScheduler> {
        match self {
            Policy::MpptIc => Box::new(IndividualCore),
            Policy::MpptRr | Policy::MpptChipWide => Box::new(RoundRobin::default()),
            Policy::MpptOpt | Policy::FixedPower(_) => Box::new(TprOptimized),
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::FixedPower(w) => write!(f, "Fixed-Power({w:.0})"),
            Policy::MpptIc | Policy::MpptRr | Policy::MpptOpt | Policy::MpptChipWide => {
                f.write_str(self.label())
            }
        }
    }
}

/// Chooses which core receives (or surrenders) the next V/F step.
///
/// Implementations must only return cores that can actually take the step:
/// ungated and not already at the extreme level.
pub trait LoadScheduler: fmt::Debug + Send {
    /// The core to speed up next, or `None` if every core is saturated.
    fn pick_increase(&mut self, chip: &MultiCoreChip) -> Option<CoreId>;

    /// The core to slow down next, or `None` if every core is at the floor.
    fn pick_decrease(&mut self, chip: &MultiCoreChip) -> Option<CoreId>;

    /// Scheduler name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Eligibility helpers shared by the schedulers.
fn can_increase(chip: &MultiCoreChip, id: CoreId) -> bool {
    chip.core(id)
        .map(|c| !c.is_gated() && !c.level().is_highest())
        .unwrap_or(false)
}

fn can_decrease(chip: &MultiCoreChip, id: CoreId) -> bool {
    chip.core(id)
        .map(|c| !c.is_gated() && !c.level().is_lowest())
        .unwrap_or(false)
}

/// MPPT&IC: concentrate power. Speeds up the lowest-indexed tunable core to
/// the top before touching the next; sheds power from the highest-indexed
/// tunable core first.
#[derive(Debug, Default, Clone)]
pub struct IndividualCore;

impl LoadScheduler for IndividualCore {
    fn pick_increase(&mut self, chip: &MultiCoreChip) -> Option<CoreId> {
        (0..chip.core_count())
            .map(CoreId)
            .find(|&id| can_increase(chip, id))
    }

    fn pick_decrease(&mut self, chip: &MultiCoreChip) -> Option<CoreId> {
        (0..chip.core_count())
            .rev()
            .map(CoreId)
            .find(|&id| can_decrease(chip, id))
    }

    fn name(&self) -> &'static str {
        "individual-core"
    }
}

/// MPPT&RR: distribute steps evenly with a rotating cursor.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    fn pick(
        &mut self,
        chip: &MultiCoreChip,
        ok: impl Fn(&MultiCoreChip, CoreId) -> bool,
    ) -> Option<CoreId> {
        let n = chip.core_count();
        for offset in 0..n {
            let id = CoreId((self.cursor + offset) % n);
            if ok(chip, id) {
                self.cursor = (id.0 + 1) % n;
                return Some(id);
            }
        }
        None
    }
}

impl LoadScheduler for RoundRobin {
    fn pick_increase(&mut self, chip: &MultiCoreChip) -> Option<CoreId> {
        self.pick(chip, can_increase)
    }

    fn pick_decrease(&mut self, chip: &MultiCoreChip) -> Option<CoreId> {
        self.pick(chip, can_decrease)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// MPPT&Opt: throughput-power-ratio optimization (the SolarCore scheduler).
#[derive(Debug, Default, Clone)]
pub struct TprOptimized;

impl LoadScheduler for TprOptimized {
    fn pick_increase(&mut self, chip: &MultiCoreChip) -> Option<CoreId> {
        tpr::best_increase(chip)
    }

    fn pick_decrease(&mut self, chip: &MultiCoreChip) -> Option<CoreId> {
        tpr::best_decrease(chip)
    }

    fn name(&self) -> &'static str {
        "tpr-optimized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::VfLevel;
    use workloads::Mix;

    #[test]
    fn labels_match_table6() {
        assert_eq!(Policy::FixedPower(Watts::new(75.0)).label(), "Fixed-Power");
        assert_eq!(Policy::MpptIc.label(), "MPPT&IC");
        assert_eq!(Policy::MpptRr.label(), "MPPT&RR");
        assert_eq!(Policy::MpptOpt.label(), "MPPT&Opt");
        assert_eq!(
            Policy::FixedPower(Watts::new(75.0)).to_string(),
            "Fixed-Power(75 W)"
        );
    }

    #[test]
    fn individual_core_concentrates() {
        let mut chip = MultiCoreChip::new(&Mix::m1());
        chip.set_all_levels(VfLevel::lowest());
        let mut sched = IndividualCore;
        // Five increases all hit core 0 (it has five steps to the top).
        for _ in 0..5 {
            let id = sched.pick_increase(&chip).unwrap();
            assert_eq!(id, CoreId(0));
            let next = chip.core(id).unwrap().level().faster().unwrap();
            chip.set_level(id, next).unwrap();
        }
        // Core 0 saturated: the sixth goes to core 1.
        assert_eq!(sched.pick_increase(&chip).unwrap(), CoreId(1));
        // Decrease comes from the other end.
        assert_eq!(sched.pick_decrease(&chip).unwrap(), CoreId(0));
    }

    #[test]
    fn round_robin_visits_everyone() {
        let mut chip = MultiCoreChip::new(&Mix::m1());
        chip.set_all_levels(VfLevel::lowest());
        let mut sched = RoundRobin::default();
        let mut seen = Vec::new();
        for _ in 0..8 {
            let id = sched.pick_increase(&chip).unwrap();
            seen.push(id.0);
            let next = chip.core(id).unwrap().level().faster().unwrap();
            chip.set_level(id, next).unwrap();
        }
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn round_robin_skips_saturated_cores() {
        let mut chip = MultiCoreChip::new(&Mix::m1());
        chip.set_all_levels(VfLevel::lowest());
        chip.set_level(CoreId(0), VfLevel::highest()).unwrap();
        let mut sched = RoundRobin::default();
        assert_eq!(sched.pick_increase(&chip).unwrap(), CoreId(1));
    }

    #[test]
    fn tpr_scheduler_prefers_efficient_cores() {
        let mut chip = MultiCoreChip::new(&Mix::ml2()); // gcc..swim
        chip.set_all_levels(VfLevel::lowest());
        let mut sched = TprOptimized;
        let id = sched.pick_increase(&chip).unwrap();
        let name = chip.core(id).unwrap().spec().name;
        assert!(
            ["mesa", "lucas", "equake", "swim"].contains(&name),
            "picked {name}"
        );
    }

    #[test]
    fn schedulers_return_none_when_saturated() {
        let chip = MultiCoreChip::new(&Mix::h1()); // all at top
        assert!(IndividualCore.pick_increase(&chip).is_none());
        assert!(RoundRobin::default().pick_increase(&chip).is_none());
        assert!(TprOptimized.pick_increase(&chip).is_none());

        let mut chip = MultiCoreChip::new(&Mix::h1());
        chip.set_all_levels(VfLevel::lowest());
        assert!(IndividualCore.pick_decrease(&chip).is_none());
        assert!(RoundRobin::default().pick_decrease(&chip).is_none());
        assert!(TprOptimized.pick_decrease(&chip).is_none());
    }

    #[test]
    fn policy_builds_matching_scheduler() {
        assert_eq!(Policy::MpptIc.scheduler().name(), "individual-core");
        assert_eq!(Policy::MpptRr.scheduler().name(), "round-robin");
        assert_eq!(Policy::MpptOpt.scheduler().name(), "tpr-optimized");
        assert_eq!(
            Policy::FixedPower(Watts::new(50.0)).scheduler().name(),
            "tpr-optimized"
        );
    }
}
