//! Whole-day closed-loop simulation: weather → PV → power train →
//! SolarCore controller → multi-core chip.
//!
//! This is the experimental rig behind every figure and table of the
//! paper's evaluation (Section 6): it advances minute by minute through an
//! environment trace, lets the ATS choose between solar and utility, runs
//! the configured power-management policy, and records per-minute budget
//! vs. actual power, bus voltage and committed instructions.

use std::rc::Rc;

use archsim::{AvailabilityMask, CoreId, MultiCoreChip, VfLevel};
use faults::{AtsOverride, CoreConstraint, FaultPlan, SensorInjector};
use powertrain::{
    AutomaticTransferSwitch, DcDcConverter, FaultedIvSensor, IvSensor, PowerSource, SolveStats,
};
use pv::generator::PvGenerator;
use pv::units::{Volts, WattHours, Watts};
use solarenv::{EnvTrace, Season, Site};
use telemetry::{field, Profiler, Telemetry};
use workloads::{Mix, PhaseTrace};

use crate::adapter::LoadTuner;
use crate::config::ControllerConfig;
use crate::controller::{SolarCoreController, TrackingRig};
use crate::degrade::{DegradationFsm, DegradeConfig, FsmTransition};
use crate::error::CoreError;
use crate::invariants;
use crate::metrics;
use crate::policy::Policy;
use crate::telemetry::{schema, CountingArray, DayInstruments};
use crate::tpr;

/// Seed-mixing constant so phase traces differ from weather traces.
const PHASE_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// The workload phase-trace seed used for a `(site, season, day)` run.
/// Exposed so baselines (e.g. the battery systems) can replay exactly the
/// same program phases as the SolarCore engine.
pub fn phase_seed(site: &Site, season: Season, day: u32) -> u64 {
    site.trace_seed(season, day) ^ PHASE_SEED_SALT
}

/// Minimum budget (watts) below which relative tracking error is not
/// accumulated (avoids division noise at dawn/dusk).
const ERROR_FLOOR_W: f64 = 5.0;

/// One minute of simulation record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinuteRecord {
    /// Minute of day (absolute, e.g. 450 = 07:30).
    pub minute: u32,
    /// The oracle maximum power available from the array.
    pub budget: Watts,
    /// Power actually extracted from the array (zero on utility).
    pub drawn: Watts,
    /// Load-bus voltage.
    pub bus_voltage: Volts,
    /// Active power source.
    pub source: PowerSource,
    /// Chip power demand during the minute.
    pub chip_power: Watts,
    /// Chip power *capacity* during the minute (all cores at top V/F) —
    /// the most the load adaptation could have absorbed.
    pub chip_capacity: Watts,
    /// Instructions committed during the minute.
    pub instructions: f64,
    /// Canonical digest of the per-core V/F state at the end of the
    /// minute ([`MultiCoreChip::vf_digest`]) — lets the determinism
    /// harness compare per-core operating points across runs.
    pub vf_digest: u64,
}

/// Configures and runs one simulated day.
///
/// # Examples
///
/// ```
/// use solarcore::{DaySimulation, Policy};
/// use solarenv::{Site, Season};
/// use workloads::Mix;
///
/// let result = DaySimulation::builder()
///     .site(Site::golden_co())
///     .season(Season::Oct)
///     .day(1)
///     .mix(Mix::l2())
///     .policy(Policy::MpptRr)
///     .build()
///     .unwrap()
///     .run()
///     .unwrap();
/// assert_eq!(result.records().len(), 601);
/// ```
#[derive(Debug, Clone)]
pub struct DaySimulation {
    site: Site,
    season: Season,
    day: u32,
    mix: Mix,
    policy: Policy,
    config: ControllerConfig,
    array: pv::PvArray,
    converter: DcDcConverter,
    ats_threshold: Watts,
    ats_hysteresis: Watts,
    sensor: IvSensor,
    solver_cache: bool,
    telemetry: Telemetry,
    profiler: Profiler,
    fault_plan: Option<FaultPlan>,
    degrade: Option<DegradeConfig>,
}

/// Builder for [`DaySimulation`].
#[derive(Debug, Clone)]
pub struct DaySimulationBuilder {
    site: Site,
    season: Season,
    day: u32,
    mix: Mix,
    policy: Policy,
    config: ControllerConfig,
    array: pv::PvArray,
    converter: DcDcConverter,
    ats_threshold: Option<Watts>,
    ats_hysteresis: Watts,
    sensor: IvSensor,
    solver_cache: bool,
    telemetry: Telemetry,
    profiler: Profiler,
    fault_plan: Option<FaultPlan>,
    degrade: Option<DegradeConfig>,
}

/// Reusable per-`(site, season, day, mix)` state of a day simulation: the
/// decoded weather trace, the workload phase traces, and the PV solver memo
/// ([`pv::ArrayCache`]).
///
/// [`DaySimulation::run`] builds one of these internally on every call;
/// [`DaySimulation::prepare`] + [`DaySimulation::run_prepared`] let callers
/// amortize it — across the policies of a [`DayBatch`], or across repeated
/// runs (the cold-vs-warm comparison the benchmark suite measures). Because
/// trace generation is a pure function of `(site, season, day, mix)` and the
/// cache is bitwise-transparent, a prepared run is bit-identical to a fresh
/// one; `crates/bench/tests/determinism.rs` asserts exactly that.
#[derive(Debug)]
pub struct SimSetup {
    site_code: &'static str,
    season: Season,
    day: u32,
    mix_name: &'static str,
    /// Digest of the fault plan the trace was prepared under
    /// ([`FaultPlan::digest`]; `0` when disarmed) — irradiance faults are
    /// baked into the trace at prepare time, so a setup must not be
    /// replayed under a different plan.
    faults_digest: u64,
    trace: EnvTrace,
    phases: Vec<PhaseTrace>,
    cache: pv::ArrayCache,
}

impl SimSetup {
    /// The decoded environment trace (also the battery baselines' input,
    /// so grid sweeps need not regenerate it per policy).
    pub fn trace(&self) -> &EnvTrace {
        &self.trace
    }

    /// Hit/miss counters of the shared PV solver memo.
    pub fn cache_stats(&self) -> pv::CacheStats {
        self.cache.stats()
    }

    /// Consumes the setup and releases its PV solver memo, so a multi-day
    /// caller can thread one warm cache through consecutive days via
    /// [`DaySimulation::prepare_with_cache`]. The memo keys on exact
    /// `(G, T, V)` bits and is bitwise-transparent, so reuse never changes
    /// results — it only converts repeated solves into hits.
    pub fn into_cache(self) -> pv::ArrayCache {
        self.cache
    }
}

impl DaySimulation {
    /// Starts a builder with the paper's defaults (Phoenix AZ, January,
    /// mix HM2, MPPT&Opt, BP3180N array).
    pub fn builder() -> DaySimulationBuilder {
        DaySimulationBuilder {
            site: Site::phoenix_az(),
            season: Season::Jan,
            day: 0,
            mix: Mix::hm2(),
            policy: Policy::MpptOpt,
            config: ControllerConfig::paper_defaults(),
            array: pv::PvArray::solarcore_default(),
            converter: DcDcConverter::solarcore_default(),
            ats_threshold: None,
            ats_hysteresis: Watts::new(3.0),
            sensor: IvSensor::ideal(),
            solver_cache: true,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            fault_plan: None,
            degrade: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Runs the day and collects the result.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on internal inconsistencies surfaced by the
    /// chip model, the load tuner or the power train (e.g. a phase trace
    /// sized to a different chip). Physics violations — budget
    /// over-draws, runaway bus voltages — trip the [`invariants`]
    /// sanitizer instead of returning.
    pub fn run(&self) -> Result<DayResult, CoreError> {
        self.run_prepared(&self.prepare())
    }

    /// Decodes the per-`(site, season, day, mix)` inputs — weather trace and
    /// workload phases — and allocates a fresh PV solver memo, for reuse
    /// across [`Self::run_prepared`] calls.
    pub fn prepare(&self) -> SimSetup {
        self.prepare_with_cache(pv::ArrayCache::new())
    }

    /// Like [`Self::prepare`], but seeds the setup with an existing PV
    /// solver memo instead of a cold one. This is the multi-day reuse hook:
    /// a campaign shard simulating consecutive days of one array threads
    /// the cache forward ([`SimSetup::into_cache`] → `prepare_with_cache`)
    /// so operating points recur across days as warm hits. The memo is
    /// keyed on exact input bits and every miss delegates to the plain
    /// solver, so a warm-started day is bit-identical to a cold one; the
    /// cache is only meaningful for the same [`pv::PvArray`] the entries
    /// were solved against, which is the caller's responsibility.
    pub fn prepare_with_cache(&self, cache: pv::ArrayCache) -> SimSetup {
        let _prof = self.profiler.scope(schema::PROF_PREPARE);
        let mut trace = EnvTrace::generate(&self.site, self.season, self.day);
        if let Some(plan) = &self.fault_plan {
            if plan.has_irradiance_faults() {
                // Environmental transients are a property of the day, not
                // of the control loop: bake them into the trace once so
                // every policy of a batch sees the same clouded sky.
                trace.scale_irradiance(|minute| plan.irradiance_factor_at(minute));
            }
        }
        let minutes = trace.samples().len();
        let seed = phase_seed(&self.site, self.season, self.day);
        let phases = PhaseTrace::for_mix(&self.mix, seed, minutes);
        SimSetup {
            site_code: self.site.code(),
            season: self.season,
            day: self.day,
            mix_name: self.mix.name(),
            faults_digest: self.faults_digest(),
            trace,
            phases,
            cache,
        }
    }

    /// Digest of the armed fault plan (`0` when disarmed), the tag that
    /// binds a [`SimSetup`] to the plan it was prepared under.
    fn faults_digest(&self) -> u64 {
        self.fault_plan.as_ref().map_or(0, FaultPlan::digest)
    }

    /// Runs the day against a previously [`Self::prepare`]d setup, skipping
    /// trace regeneration and reusing the setup's PV solver memo.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `setup` was prepared for a
    /// different `(site, season, day, mix)`, plus everything
    /// [`Self::run`] can return.
    pub fn run_prepared(&self, setup: &SimSetup) -> Result<DayResult, CoreError> {
        if setup.site_code != self.site.code()
            || setup.season != self.season
            || setup.day != self.day
            || setup.mix_name != self.mix.name()
        {
            return Err(CoreError::InvalidConfig {
                reason: "SimSetup was prepared for a different (site, season, day, mix)",
            });
        }
        if setup.faults_digest != self.faults_digest() {
            return Err(CoreError::InvalidConfig {
                reason: "SimSetup was prepared under a different fault plan",
            });
        }
        // Wall-clock profiling of the day (fenced: measurements never
        // touch simulated state; a disabled handle costs one branch).
        let prof = &self.profiler;
        prof.set_minute(setup.trace.samples().first().map_or(0, |s| s.minute_of_day));
        let _prof_day = prof.scope(schema::PROF_RUN_DAY);

        let trace = &setup.trace;
        let phases = &setup.phases;

        // All PV access goes through one generator handle; with the solver
        // cache enabled that handle memoizes exact-key solves (bitwise
        // transparent — every miss delegates to the plain array).
        let cached = pv::CachedArray::new(&self.array, &setup.cache);
        let array: &dyn PvGenerator = if self.solver_cache {
            &cached
        } else {
            &self.array
        };

        // When a telemetry stream is attached, observe the PV access path
        // through a counting wrapper and tally operating-point solves. Both
        // layers are bitwise transparent: the disabled path and the
        // instrumented path compute identical results (asserted by the
        // determinism harness).
        let tel = &self.telemetry;
        let instruments = DayInstruments::new();
        let counting;
        let array: &dyn PvGenerator = if tel.is_enabled() {
            counting = CountingArray::new(array, &instruments);
            &counting
        } else {
            array
        };
        let solve_stats = Rc::new(SolveStats::new());

        // Chaos seams. An armed fault plan routes the controller's sensing
        // through an injecting wrapper and (like an explicit `degrade`
        // override) arms plausibility-window detection plus the
        // MPPT ⇄ fallback state machine. All seams keep an exact disarmed
        // fast path, so a run without a plan is bit-identical to the
        // pre-seam engine (the determinism harness pins that hash).
        let plan = self.fault_plan.as_ref();
        let mut controller = match plan {
            Some(plan) if plan.has_sensor_faults() => SolarCoreController::with_faulted_sensor(
                self.config.clone(),
                FaultedIvSensor::armed(self.sensor.clone(), SensorInjector::new(plan)),
            )?,
            _ => SolarCoreController::with_sensor(self.config.clone(), self.sensor.clone())?,
        };
        let degrade_config = self
            .degrade
            .or_else(|| plan.map(|_| DegradeConfig::paper_defaults()));
        let mut fsm = match degrade_config {
            Some(config) => {
                controller.enable_detection(config)?;
                Some(DegradationFsm::new(config)?)
            }
            None => None,
        };
        let mut degrade_entered_minute: u32 = 0;
        let base_efficiency = self.converter.efficiency();
        let mut current_derate = 1.0_f64;
        if tel.is_enabled() {
            controller.set_solve_stats(Rc::clone(&solve_stats));
            tel.set_minute(setup.trace.samples().first().map_or(0, |s| s.minute_of_day));
            tel.event(
                schema::EVENT_DAY_START,
                vec![
                    field(schema::SITE, self.site.code()),
                    field(schema::SEASON, self.season.to_string()),
                    field(schema::DAY, self.day),
                    field(schema::MIX, self.mix.name()),
                    field(schema::POLICY, self.policy.label()),
                ],
            )?;
        }
        let vdd = self.config.nominal_bus_voltage;
        let mut chip = MultiCoreChip::new(&self.mix); // utility boot: full speed
        let mut converter = self.converter.clone();
        let mut tuner = LoadTuner::new(self.policy);
        let mut ats = AutomaticTransferSwitch::new(self.ats_threshold, self.ats_hysteresis)?;
        // The lowest reachable transfer ratio bounds the bus voltage the
        // converter can ever present: V_out = V_panel / k ≤ Voc / k_min.
        let k_min = self.converter.ratio_range().0;
        let mut prev_source = PowerSource::Utility;
        let mut force_track = false;

        let mut vf_residency = vec![[0u64; VfLevel::COUNT]; chip.core_count()];
        let mut gated_minutes = vec![0u64; chip.core_count()];

        let mut records = Vec::with_capacity(trace.samples().len());
        for (t, sample) in trace.samples().iter().enumerate() {
            tel.set_minute(sample.minute_of_day);
            prof.set_minute(sample.minute_of_day);
            let minute = sample.minute_of_day;
            if let Some(plan) = plan {
                controller.set_sensor_minute(minute);
                if plan.has_core_faults() {
                    // Gate lost cores and clamp throttled ones before the
                    // minute executes; later budget allocations re-apply
                    // the mask (it only ever gates or slows, so a masked
                    // chip never exceeds an allocated budget).
                    enforce_plan_mask(plan, minute, &mut chip)?;
                }
                let derate = plan.converter_derate_at(minute);
                #[allow(clippy::float_cmp)] // exact 1.0/derate comparison is the disarmed fast path
                if derate != current_derate {
                    // Rebuild at the same ratio with the derated conversion
                    // efficiency; any queued lag commands are dropped (the
                    // degraded regulator restarts its command pipeline).
                    converter = DcDcConverter::new(
                        converter.ratio(),
                        self.converter.ratio_range().0,
                        self.converter.ratio_range().1,
                        self.converter.ratio_step(),
                        base_efficiency * derate,
                    )?;
                    current_derate = derate;
                }
                converter.set_actuator_lag(plan.actuator_lag_at(minute));
            }
            let env = sample.cell_env();
            let budget = array.mpp(env).power;
            let source = match plan.and_then(|p| p.ats_override_at(minute)) {
                Some(AtsOverride::ForceUtility) => ats.force(PowerSource::Utility),
                Some(AtsOverride::ForceSolar) => ats.force(PowerSource::Solar),
                None => ats.update(budget),
            };

            if source != prev_source {
                match source {
                    PowerSource::Solar => {
                        // Come up from a minimal, safe load; the first
                        // tracking invocation ramps it to the MPP.
                        tuner.ungate_all(&mut chip)?;
                        chip.set_all_levels(VfLevel::lowest());
                        force_track = true;
                    }
                    PowerSource::Utility => {
                        // Conventional CMP on grid power.
                        tuner.ungate_all(&mut chip)?;
                        chip.set_all_levels(VfLevel::highest());
                    }
                }
                prev_source = source;
            }

            let instr_before = chip.total_instructions();
            let mults: Vec<f64> = phases.iter().map(|p| p.at(t)).collect();
            chip.step(&mults, 60.0)?;
            let instructions = chip.total_instructions() - instr_before;
            let chip_power = chip.total_power();
            let chip_capacity = chip.power_capacity();

            let (drawn, bus_voltage) = match source {
                PowerSource::Utility => (Watts::ZERO, vdd),
                PowerSource::Solar => match self.policy {
                    Policy::FixedPower(budget_cap) => {
                        if force_track || t % self.config.tracking_interval_minutes as usize == 0 {
                            let moves = {
                                let _prof_tpr = prof.scope(schema::PROF_TPR_ALLOC);
                                allocate_budget(&mut chip, budget_cap)?
                            };
                            if let Some(plan) = plan.filter(|p| p.has_core_faults()) {
                                // The fill ungates everything; re-impose
                                // the availability mask (monotone: only
                                // gates or slows, so the budget holds).
                                enforce_plan_mask(plan, minute, &mut chip)?;
                            }
                            force_track = false;
                            if tel.is_enabled() {
                                instruments.tpr_moves.record(u64::from(moves));
                                tel.event(
                                    schema::EVENT_TPR_ALLOC,
                                    vec![
                                        field(schema::BUDGET_W, budget_cap.get()),
                                        field(schema::MOVES, u64::from(moves)),
                                    ],
                                )?;
                            }
                        }
                        (chip.total_power().min(budget_cap), vdd)
                    }
                    Policy::MpptIc | Policy::MpptRr | Policy::MpptOpt | Policy::MpptChipWide => {
                        // Sensing health probe + degradation state machine
                        // (armed runs only; `fsm` is `None` otherwise).
                        let mut probe_clean = false;
                        let mut degraded = false;
                        if let Some(fsm) = fsm.as_mut() {
                            let fault = controller.health_probe(array, env, &converter, &chip);
                            probe_clean = fault.is_none();
                            if let Some(fault) = fault {
                                if tel.is_enabled() {
                                    let (rejects, retries) = detector_counts(&controller);
                                    tel.event(
                                        schema::EVENT_FAULT_REJECT,
                                        vec![
                                            field(schema::REASON, fault.label()),
                                            field(schema::REJECTS, rejects),
                                            field(schema::RETRIES, retries),
                                        ],
                                    )?;
                                }
                            }
                            match fsm.step(minute, !probe_clean) {
                                FsmTransition::Entered => {
                                    degrade_entered_minute = minute;
                                    if tel.is_enabled() {
                                        let (rejects, _) = detector_counts(&controller);
                                        tel.event(
                                            schema::EVENT_DEGRADE_ENTER,
                                            vec![
                                                field(
                                                    schema::FALLBACK_BUDGET_W,
                                                    fsm.fallback_budget(budget).get(),
                                                ),
                                                field(schema::REJECTS, rejects),
                                            ],
                                        )?;
                                    }
                                }
                                FsmTransition::Exited => {
                                    // Re-enter MPPT from a forced retrack.
                                    force_track = true;
                                    if tel.is_enabled() {
                                        let (rejects, _) = detector_counts(&controller);
                                        tel.event(
                                            schema::EVENT_DEGRADE_EXIT,
                                            vec![
                                                field(
                                                    schema::DWELL_MINUTES,
                                                    u64::from(
                                                        minute
                                                            .saturating_sub(degrade_entered_minute),
                                                    ),
                                                ),
                                                field(schema::REJECTS, rejects),
                                            ],
                                        )?;
                                    }
                                }
                                FsmTransition::None => {}
                            }
                            degraded = fsm.is_degraded();
                        }
                        if degraded {
                            // Conservative fallback: stop trusting the
                            // sensors, run a Fixed-Power-style fill at a
                            // fraction of the last known-good power, on
                            // the nominal bus.
                            let fallback = match fsm.as_ref() {
                                Some(f) => f.fallback_budget(budget),
                                None => Watts::ZERO,
                            };
                            {
                                let _prof_tpr = prof.scope(schema::PROF_TPR_ALLOC);
                                allocate_budget(&mut chip, fallback)?;
                            }
                            if let Some(plan) = plan.filter(|p| p.has_core_faults()) {
                                enforce_plan_mask(plan, minute, &mut chip)?;
                            }
                            (chip.total_power().min(fallback), vdd)
                        } else {
                            let forced = force_track;
                            let op = controller.solve(array, env, &converter, &chip);
                            if force_track
                                || t % self.config.tracking_interval_minutes as usize == 0
                                || controller.needs_retrack(&op)
                            {
                                let report = {
                                    let _prof_track = prof.scope(schema::PROF_MPPT_TRACK);
                                    controller.track(&mut TrackingRig {
                                        array,
                                        env,
                                        converter: &mut converter,
                                        chip: &mut chip,
                                        tuner: &mut tuner,
                                    })?
                                };
                                force_track = false;
                                if tel.is_enabled() {
                                    instruments.track_rounds.record(u64::from(report.rounds));
                                    instruments.track_actions.record(u64::from(report.actions));
                                    instruments
                                        .track_reversals
                                        .record(u64::from(report.reversals));
                                    tel.span(
                                        schema::SPAN_TRACK,
                                        sample.minute_of_day,
                                        vec![
                                            field(schema::ROUNDS, report.rounds),
                                            field(schema::ACTIONS, report.actions),
                                            field(schema::REVERSALS, report.reversals),
                                            field(schema::FINAL_POWER_W, report.final_output_power),
                                            field(schema::RATIO_K, report.final_ratio),
                                            field(schema::FORCED, forced),
                                        ],
                                    )?;
                                }
                            }
                            if invariants::enabled() {
                                invariants::assert_bus_voltage(
                                    "engine minute",
                                    op.output_voltage,
                                    Volts::new(array.open_circuit_voltage(env).get() / k_min),
                                );
                            }
                            if probe_clean {
                                if let Some(fsm) = fsm.as_mut() {
                                    // Anchor the fallback budget to the latest
                                    // power the screened loop steered to.
                                    fsm.note_good_power(op.panel_power());
                                }
                            }
                            // The chip's useful draw is capped at its DVFS
                            // demand (the on-chip VRMs regulate); when the bus
                            // sags below nominal the impedance model caps it at
                            // what the panel delivers. The gap to the budget is
                            // the paper's power margin.
                            (op.panel_power().min(chip_power), op.output_voltage)
                        }
                    }
                },
            };

            if invariants::enabled() {
                // Nothing may be harvested beyond what the sun offered this
                // minute — the core conservation law of the whole model.
                invariants::assert_power("engine minute", chip_power);
                invariants::assert_budget("engine minute", drawn, budget);
            }

            if tel.is_enabled() {
                instruments
                    .ratio_k_centi
                    .record(ratio_centisteps(converter.ratio()));
                for (idx, core) in chip.cores().iter().enumerate() {
                    if core.is_gated() {
                        gated_minutes[idx] += 1;
                    } else {
                        vf_residency[idx][core.level().index()] += 1;
                    }
                }
                tel.event(
                    schema::EVENT_MINUTE,
                    vec![
                        field(schema::BUDGET_W, budget.get()),
                        field(schema::DRAWN_W, drawn.get()),
                        field(schema::BUS_V, bus_voltage.get()),
                        field(schema::SOURCE, source_label(source)),
                        field(schema::CHIP_POWER_W, chip_power.get()),
                        field(schema::CHIP_CAPACITY_W, chip_capacity.get()),
                        field(schema::RATIO_K, converter.ratio()),
                        field(schema::INSTRUCTIONS, instructions),
                    ],
                )?;
            }

            records.push(MinuteRecord {
                minute: sample.minute_of_day,
                budget,
                drawn,
                bus_voltage,
                source,
                chip_power,
                chip_capacity,
                instructions,
                vf_digest: chip.vf_digest(),
            });
        }

        let result = DayResult {
            site_code: self.site.code(),
            season: self.season,
            day: self.day,
            mix_name: self.mix.name(),
            policy: self.policy,
            records,
        };

        if tel.is_enabled() {
            instruments.fold_zero_evals();
            for (core, levels) in vf_residency.iter().enumerate() {
                let mut fields = vec![
                    field(schema::CORE, core),
                    field(schema::GATED_MINUTES, gated_minutes[core]),
                ];
                for (level, minutes) in levels.iter().enumerate() {
                    fields.push(field(schema::RESIDENCY_LEVELS[level], *minutes));
                }
                tel.event(schema::EVENT_VF_RESIDENCY, fields)?;
            }
            tel.histogram(&instruments.newton_iters)?;
            tel.histogram(&instruments.track_rounds)?;
            tel.histogram(&instruments.track_actions)?;
            tel.histogram(&instruments.track_reversals)?;
            tel.histogram(&instruments.tpr_moves)?;
            tel.histogram(&instruments.ratio_k_centi)?;
            tel.counter(&instruments.mpp_queries)?;
            tel.counter(&instruments.pv_evals)?;
            let cache = setup.cache_stats();
            tel.event(
                schema::EVENT_DAY_SUMMARY,
                vec![
                    field(schema::TRACKING_ERROR, result.mean_tracking_error()),
                    field(schema::ENERGY_DRAWN_WH, result.energy_drawn().get()),
                    field(schema::ENERGY_AVAILABLE_WH, result.energy_available().get()),
                    field(schema::UTILIZATION, result.utilization()),
                    field(schema::INSTRUCTIONS, result.total_instructions()),
                    field(schema::CACHE_HITS, cache.hits),
                    field(schema::CACHE_MISSES, cache.misses),
                    field(schema::SOLVES, solve_stats.solves()),
                    field(schema::PV_EVALS, solve_stats.pv_evals()),
                    field(schema::NEWTON_ITERS_TOTAL, solve_stats.newton_iters()),
                ],
            )?;
            tel.flush()?;
        }

        Ok(result)
    }
}

impl DaySimulationBuilder {
    /// Sets the geographic site.
    pub fn site(mut self, site: Site) -> Self {
        self.site = site;
        self
    }

    /// Sets the season.
    pub fn season(mut self, season: Season) -> Self {
        self.season = season;
        self
    }

    /// Sets the weather-realization day index.
    pub fn day(mut self, day: u32) -> Self {
        self.day = day;
        self
    }

    /// Sets the workload mix.
    pub fn mix(mut self, mix: Mix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the power-management policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the controller configuration.
    pub fn config(mut self, config: ControllerConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the PV array.
    pub fn array(mut self, array: pv::PvArray) -> Self {
        self.array = array;
        self
    }

    /// Overrides the DC/DC converter.
    pub fn converter(mut self, converter: DcDcConverter) -> Self {
        self.converter = converter;
        self
    }

    /// Overrides the ATS power-transfer threshold (defaults to 25 W, or to
    /// the budget for `Fixed-Power` policies).
    pub fn ats_threshold(mut self, threshold: Watts) -> Self {
        self.ats_threshold = Some(threshold);
        self
    }

    /// Routes the controller's tuning decisions through a (possibly noisy)
    /// I/V sensor — the sensor-error robustness knob.
    pub fn sensor(mut self, sensor: IvSensor) -> Self {
        self.sensor = sensor;
        self
    }

    /// Enables or disables the bitwise-transparent PV solver memo
    /// (default: enabled). Disabling forces every I-V solve cold — the
    /// baseline the cold-vs-warm benchmarks and differential tests compare
    /// against.
    pub fn solver_cache(mut self, enabled: bool) -> Self {
        self.solver_cache = enabled;
        self
    }

    /// Attaches a telemetry stream (default: disabled). An enabled handle
    /// makes every run emit the records documented in
    /// [`crate::telemetry::schema`]; instrumentation is bitwise transparent
    /// — results are identical with the handle attached or not. In a
    /// [`DayBatch`] the handle is shared by every policy's simulation, so
    /// one sink receives the whole cell's stream in run order.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a wall-clock profiler (default: disabled). An armed handle
    /// measures the prepare/run/TPR/MPPT phases into its span tree
    /// ([`telemetry::prof`]). Profiling is strictly fenced from simulated
    /// state: nothing it measures feeds any result, record or digest, so a
    /// profiled run is bit-identical to an unprofiled one
    /// (`determinism_check` §7 pins exactly that).
    pub fn profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// Arms a chaos-scenario fault plan (default: disarmed). An armed plan
    /// drives every injection seam — sensor disturbances, converter
    /// derating and actuator lag, ATS overrides, core throttles/losses and
    /// irradiance transients — on the simulated-minute axis, and implies
    /// fault detection with [`DegradeConfig::paper_defaults`] unless
    /// [`degrade`](Self::degrade) overrides it. Disarmed runs take the
    /// exact pre-seam code paths and are bit-identical to an engine
    /// without the chaos subsystem.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the graceful-degradation configuration and arms fault
    /// detection even without a fault plan (e.g. to screen a noisy sensor
    /// configured via [`sensor`](Self::sensor)).
    pub fn degrade(mut self, config: DegradeConfig) -> Self {
        self.degrade = Some(config);
        self
    }

    /// Builds one simulation per policy, all sharing a single prepared
    /// [`SimSetup`] (one trace decode, one solver memo), returned as a
    /// [`DayBatch`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `policies` is empty or the
    /// controller configuration fails validation.
    pub fn build_batch(self, policies: &[Policy]) -> Result<DayBatch, CoreError> {
        let sims = policies
            .iter()
            .map(|&policy| self.clone().policy(policy).build())
            .collect::<Result<Vec<_>, _>>()?;
        let Some(first) = sims.first() else {
            return Err(CoreError::InvalidConfig {
                reason: "a day batch requires at least one policy",
            });
        };
        let setup = first.prepare();
        Ok(DayBatch { sims, setup })
    }

    /// Finalizes the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the controller configuration
    /// fails [`ControllerConfig::validate`], or if a
    /// [`Policy::FixedPower`] budget is not a finite, non-negative power.
    pub fn build(self) -> Result<DaySimulation, CoreError> {
        self.config
            .validate()
            .map_err(|reason| CoreError::InvalidConfig { reason })?;
        // Uphold the `Policy::FixedPower` payload contract here, at the
        // single entry point every simulation passes through: downstream
        // the budget feeds the TPR fill and the drawn-power accounting
        // unchecked (and the `xtask flow` range pass seeds it as [0, ∞)).
        if let Policy::FixedPower(budget) = self.policy {
            if !budget.get().is_finite() || budget.get() < 0.0 {
                return Err(CoreError::InvalidConfig {
                    reason: "a Fixed-Power budget must be a finite, non-negative power",
                });
            }
        }
        let ats_threshold = self.ats_threshold.unwrap_or(match self.policy {
            // Fixed-power systems transfer at their budget threshold
            // (Section 6.2).
            Policy::FixedPower(budget) => budget,
            Policy::MpptIc | Policy::MpptRr | Policy::MpptOpt | Policy::MpptChipWide => {
                Watts::new(25.0)
            }
        });
        Ok(DaySimulation {
            site: self.site,
            season: self.season,
            day: self.day,
            mix: self.mix,
            policy: self.policy,
            config: self.config,
            array: self.array,
            converter: self.converter,
            ats_threshold,
            ats_hysteresis: self.ats_hysteresis,
            sensor: self.sensor,
            solver_cache: self.solver_cache,
            telemetry: self.telemetry,
            profiler: self.profiler,
            fault_plan: self.fault_plan,
            degrade: self.degrade,
        })
    }
}

/// A set of day simulations over the same `(site, season, day, mix)` cell —
/// typically one per policy — sharing a single prepared [`SimSetup`].
///
/// Batching amortizes the per-cell setup (weather-trace synthesis, phase
/// decode) and lets later simulations hit the solver memo the earlier ones
/// warmed: the per-minute budget oracle solves the *same* MPP sequence
/// under every policy. Output is bit-identical to running each simulation
/// standalone (the determinism tests compare the two paths hash-for-hash).
#[derive(Debug)]
pub struct DayBatch {
    sims: Vec<DaySimulation>,
    setup: SimSetup,
}

impl DayBatch {
    /// The batched simulations, in the policy order given to
    /// [`DaySimulationBuilder::build_batch`].
    pub fn simulations(&self) -> &[DaySimulation] {
        &self.sims
    }

    /// The shared prepared setup.
    pub fn setup(&self) -> &SimSetup {
        &self.setup
    }

    /// Runs every simulation against the shared setup, in order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CoreError`] any run returns.
    pub fn run_all(&self) -> Result<Vec<DayResult>, CoreError> {
        self.sims
            .iter()
            .map(|sim| sim.run_prepared(&self.setup))
            .collect()
    }
}

/// Greedy TPR budget fill for the `Fixed-Power` scheme: start every core at
/// the floor and hand V/F steps to the best throughput-power ratio while the
/// what-if power stays under the budget. For this separable concave problem
/// the greedy fill matches the paper's linear-programming optimum.
///
/// Returns the number of reallocation moves applied — power-gatings plus
/// granted V/F steps, excluding the uniform reset to the floor — which the
/// telemetry stream records as [`schema::EVENT_TPR_ALLOC`] /
/// [`schema::HIST_TPR_MOVES`].
///
/// # Errors
///
/// Returns [`CoreError`] if the chip rejects a core id or level transition —
/// an internal inconsistency between the TPR table and the chip state.
pub fn allocate_budget(chip: &mut MultiCoreChip, budget: Watts) -> Result<u32, CoreError> {
    let mut moves: u32 = 0;
    for id in 0..chip.core_count() {
        chip.gate(CoreId(id), false)?;
    }
    chip.set_all_levels(VfLevel::lowest());

    // If even the floor exceeds the budget, gate cores (highest id first).
    let mut victim = chip.core_count();
    while chip.total_power() > budget && victim > 0 {
        victim -= 1;
        chip.gate(CoreId(victim), true)?;
        moves += 1;
    }

    let mut blocked = vec![false; chip.core_count()];
    loop {
        let table = tpr::tpr_table(chip);
        let Some(entry) = table
            .iter()
            .find(|e| e.tpr_up.is_some() && !blocked[e.core.0])
        else {
            break;
        };
        let next = chip
            .core(entry.core)?
            .level()
            .faster()
            .ok_or(CoreError::LevelExhausted { core: entry.core.0 })?;
        if chip.power_if(entry.core, next)? <= budget {
            chip.set_level(entry.core, next)?;
            moves += 1;
        } else {
            blocked[entry.core.0] = true;
        }
    }
    if invariants::enabled() {
        // The fill must respect the cap it was given.
        invariants::assert_budget("budget allocation", chip.total_power(), budget);
    }
    Ok(moves)
}

/// Builds the minute's [`AvailabilityMask`] from the plan's core
/// constraints and applies it to the chip. Monotone: the mask only gates
/// or slows cores, so applying it after a budget allocation can never push
/// the chip over that budget.
fn enforce_plan_mask(
    plan: &FaultPlan,
    minute: u32,
    chip: &mut MultiCoreChip,
) -> Result<u32, CoreError> {
    let mut mask = AvailabilityMask::none(chip.core_count());
    for constraint in plan.core_constraints_at(minute) {
        match constraint {
            CoreConstraint::Throttle {
                core,
                max_level_index,
            } => mask.throttle(core, max_level_index),
            CoreConstraint::Loss { core } => mask.lose(core),
        }
    }
    if mask.is_unconstrained() {
        Ok(0)
    } else {
        Ok(mask.enforce(chip)?)
    }
}

/// The detector's cumulative reject/retry counters (zeros when detection
/// is not armed), for the `fault_*`/`degrade_*` telemetry events.
fn detector_counts(controller: &SolarCoreController) -> (u64, u64) {
    controller
        .detector()
        .map_or((0, 0), |d| (d.reject_count(), d.retry_count()))
}

/// The converter transfer ratio in centisteps (`round(k · 100)`) for the
/// [`schema::HIST_RATIO_K_CENTI`] trajectory histogram.
fn ratio_centisteps(ratio: f64) -> u64 {
    if !ratio.is_finite() {
        return 0;
    }
    // Ratios are physically bounded well under 10^4; the clamp only makes
    // the cast provably lossless.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (ratio * 100.0).round().clamp(0.0, 1_000_000.0) as u64
    }
}

/// Schema label for the active power source.
fn source_label(source: PowerSource) -> &'static str {
    match source {
        PowerSource::Solar => "solar",
        PowerSource::Utility => "utility",
    }
}

/// Aggregated outcome of one simulated day.
#[derive(Debug, Clone, PartialEq)]
pub struct DayResult {
    site_code: &'static str,
    season: Season,
    day: u32,
    mix_name: &'static str,
    policy: Policy,
    records: Vec<MinuteRecord>,
}

impl DayResult {
    /// Site code the day was simulated at.
    pub fn site_code(&self) -> &'static str {
        self.site_code
    }

    /// Season of the simulated day.
    pub fn season(&self) -> Season {
        self.season
    }

    /// Weather-realization index.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Workload mix name (Table 5).
    pub fn mix_name(&self) -> &'static str {
        self.mix_name
    }

    /// Policy that produced this result.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Per-minute records.
    pub fn records(&self) -> &[MinuteRecord] {
        &self.records
    }

    /// Total solar energy extracted over the day.
    pub fn energy_drawn(&self) -> WattHours {
        WattHours::new(self.records.iter().map(|r| r.drawn.get() / 60.0).sum())
    }

    /// Theoretical maximum solar energy (perfect MPP harvesting all day).
    pub fn energy_available(&self) -> WattHours {
        WattHours::new(self.records.iter().map(|r| r.budget.get() / 60.0).sum())
    }

    /// Green energy utilization: drawn / available (Section 6.3).
    pub fn utilization(&self) -> f64 {
        let avail = self.energy_available().get();
        if avail <= 0.0 {
            0.0
        } else {
            self.energy_drawn().get() / avail
        }
    }

    /// Minutes the chip ran on solar power.
    pub fn effective_minutes(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.source == PowerSource::Solar)
            .count()
    }

    /// Effective operation duration as a fraction of the daytime window.
    pub fn effective_fraction(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.effective_minutes() as f64 / self.records.len() as f64
        }
    }

    /// Instructions committed while solar-powered — the performance-time
    /// product (PTP) the paper optimizes.
    pub fn solar_instructions(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.source == PowerSource::Solar)
            .map(|r| r.instructions)
            .sum()
    }

    /// All instructions committed during the day (solar + utility).
    pub fn total_instructions(&self) -> f64 {
        self.records.iter().map(|r| r.instructions).sum()
    }

    /// Mean relative tracking error over solar-powered minutes:
    /// `|P_budget − P_actual| / P_budget` (Section 6.1), where the budget is
    /// capped at the chip's own power capacity — when the sun offers more
    /// than every core at full speed can absorb, the surplus is headroom,
    /// not a tracking failure (the paper's low-EPI workloads would
    /// otherwise be unfairly penalized).
    pub fn mean_tracking_error(&self) -> f64 {
        let errors: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.source == PowerSource::Solar && r.budget.get() > ERROR_FLOOR_W)
            .map(|r| {
                let achievable = r.budget.min(r.chip_capacity).get().max(ERROR_FLOOR_W);
                (achievable - r.drawn.get()).abs() / achievable
            })
            .collect();
        metrics::mean(&errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: Policy) -> DayResult {
        DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jan)
            .mix(Mix::hm2())
            .policy(policy)
            .build()
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn invalid_config_fails_the_build() {
        let mut cfg = ControllerConfig::paper_defaults();
        cfg.voltage_tolerance = -0.5;
        let err = DaySimulation::builder().config(cfg).build().unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    /// The `Policy::FixedPower` payload contract: only finite, non-negative
    /// budgets get past the builder.
    #[test]
    fn bad_fixed_power_budgets_fail_the_build() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let err = DaySimulation::builder()
                .policy(Policy::FixedPower(Watts::new(bad)))
                .build()
                .unwrap_err();
            assert!(matches!(err, CoreError::InvalidConfig { .. }), "{bad}");
        }
        DaySimulation::builder()
            .policy(Policy::FixedPower(Watts::new(20.0)))
            .build()
            .unwrap();
    }

    #[test]
    fn day_has_601_records() {
        let r = quick(Policy::MpptOpt);
        assert_eq!(r.records().len(), 601);
        assert_eq!(r.records()[0].minute, 450);
    }

    #[test]
    fn sunny_winter_phoenix_mostly_solar_with_high_utilization() {
        let r = quick(Policy::MpptOpt);
        assert!(
            r.effective_fraction() > 0.7,
            "effective {:.2}",
            r.effective_fraction()
        );
        assert!(r.utilization() > 0.6, "utilization {:.2}", r.utilization());
        assert!(r.utilization() <= 1.0);
        assert!(r.solar_instructions() > 0.0);
    }

    #[test]
    fn drawn_power_never_exceeds_budget_materially() {
        let r = quick(Policy::MpptOpt);
        for rec in r.records() {
            assert!(
                rec.drawn.get() <= rec.budget.get() + 0.5,
                "minute {}: drew {} of {}",
                rec.minute,
                rec.drawn,
                rec.budget
            );
        }
    }

    #[test]
    fn utility_minutes_draw_no_solar() {
        let r = quick(Policy::MpptOpt);
        for rec in r.records() {
            if rec.source == PowerSource::Utility {
                assert_eq!(rec.drawn, Watts::ZERO);
            }
        }
    }

    #[test]
    fn determinism_same_inputs_same_result() {
        let a = quick(Policy::MpptRr);
        let b = quick(Policy::MpptRr);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_exposes_its_simulations_and_matches_standalone_runs() {
        let policies = [Policy::MpptOpt, Policy::MpptRr];
        let batch = DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jan)
            .mix(Mix::hm2())
            .build_batch(&policies)
            .unwrap();
        assert_eq!(batch.simulations().len(), policies.len());
        let results = batch.run_all().unwrap();
        for (sim, batched) in batch.simulations().iter().zip(&results) {
            let standalone = sim.run_prepared(batch.setup()).unwrap();
            assert_eq!(standalone, *batched);
        }
    }

    #[test]
    fn fixed_power_caps_draw_at_budget() {
        let budget = Watts::new(75.0);
        let r = quick(Policy::FixedPower(budget));
        for rec in r.records() {
            assert!(rec.drawn <= budget + Watts::new(1e-9));
        }
        // The cap must bite: utilization clearly below the MPPT policies'.
        let mppt = quick(Policy::MpptOpt);
        assert!(r.utilization() < mppt.utilization());
    }

    #[test]
    fn allocate_budget_respects_the_cap_and_uses_it() {
        let mut chip = MultiCoreChip::new(&Mix::hm2());
        let budget = Watts::new(60.0);
        allocate_budget(&mut chip, budget).unwrap();
        let p = chip.total_power();
        assert!(p <= budget, "allocated {p} over {budget}");
        assert!(
            p.get() > 0.75 * budget.get(),
            "left too much on the table: {p}"
        );
    }

    #[test]
    fn allocate_budget_gates_cores_when_budget_is_tiny() {
        let mut chip = MultiCoreChip::new(&Mix::h1());
        allocate_budget(&mut chip, Watts::new(10.0)).unwrap();
        assert!(chip.total_power() <= Watts::new(10.0));
        assert!(chip.cores().iter().any(|c| c.is_gated()));
    }

    #[test]
    fn opt_beats_ic_on_heterogeneous_mixes() {
        let opt = quick(Policy::MpptOpt);
        let ic = quick(Policy::MpptIc);
        assert!(
            opt.solar_instructions() > ic.solar_instructions(),
            "opt {:.3e} vs ic {:.3e}",
            opt.solar_instructions(),
            ic.solar_instructions()
        );
    }

    #[test]
    fn telemetry_instrumentation_is_bit_transparent() {
        use std::cell::RefCell;
        use telemetry::JsonlSink;

        let plain = quick(Policy::MpptOpt);
        let sink = Rc::new(RefCell::new(JsonlSink::new()));
        let traced = DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jan)
            .mix(Mix::hm2())
            .policy(Policy::MpptOpt)
            .telemetry(Telemetry::attached(sink.clone()))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(plain, traced, "instrumentation changed the simulation");

        let stream = sink.borrow().buffer().to_string();
        assert!(stream.contains("\"day_start\""));
        assert!(stream.contains("\"track\""));
        assert!(stream.contains("\"vf_residency\""));
        assert!(stream.contains("\"day_summary\""));
        // day_start + one minute event per record + spans/snapshots.
        assert!(stream.lines().count() > traced.records().len());
    }

    #[test]
    fn fixed_power_telemetry_reports_tpr_moves() {
        use std::cell::RefCell;
        use telemetry::JsonlSink;

        let sink = Rc::new(RefCell::new(JsonlSink::new()));
        DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jan)
            .mix(Mix::hm2())
            .policy(Policy::FixedPower(Watts::new(75.0)))
            .telemetry(Telemetry::attached(sink.clone()))
            .build()
            .unwrap()
            .run()
            .unwrap();
        let stream = sink.borrow().buffer().to_string();
        assert!(stream.contains("\"tpr_alloc\""));
        assert!(stream.contains("\"tpr_moves\""));
    }

    #[test]
    fn ratio_centisteps_rounds_and_saturates() {
        assert_eq!(ratio_centisteps(1.0), 100);
        assert_eq!(ratio_centisteps(3.456), 346);
        assert_eq!(ratio_centisteps(-1.0), 0);
        assert_eq!(ratio_centisteps(f64::NAN), 0);
    }

    #[test]
    fn tracking_error_is_single_digit_on_regular_weather() {
        let r = quick(Policy::MpptOpt);
        let err = r.mean_tracking_error();
        assert!(err < 0.25, "tracking error {err:.3}");
        assert!(err > 0.0);
    }
}
