//! Graceful degradation: sensor-fault detection, hold-last-good reading
//! screening and the MPPT → conservative-budget fallback state machine
//! (DESIGN.md §17).
//!
//! SolarCore's MPPT loop steers entirely by its I/V sensors; one stuck or
//! dropped-out sensor corrupts every perturbation decision. The hardening
//! layered here follows the degraded-mode playbook of utility-scale PV
//! setpoint trackers: *screen* every reading against a model-based
//! plausibility window (reject, re-sample with bounded retry, hold the last
//! good value), *trip* into a conservative Fixed-Power-style fallback
//! budget when detection confidence collapses, and *re-enter* MPPT only
//! after a hysteresis dwell so marginal sensors cannot make the controller
//! oscillate between modes.

use pv::units::{Amps, Volts, Watts};

use crate::error::CoreError;

/// Tolerance for "the modeled truth moved" in the stuck-sensor heuristic.
const TRUTH_MOTION_EPS: f64 = 1e-9;

/// Configuration for fault detection and the degradation state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeConfig {
    /// Relative half-width of the plausibility window around the modeled
    /// reading (e.g. `0.25` accepts measurements within ±25 %).
    pub relative_window: f64,
    /// Absolute voltage window floor, so near-zero expected voltages keep
    /// a usable acceptance band.
    pub voltage_floor: Volts,
    /// Absolute current window floor, mirroring `voltage_floor`.
    pub current_floor: Amps,
    /// Re-sample attempts per screened reading before holding last-good.
    pub max_retries: u32,
    /// Consecutive faulty health probes before tripping into degraded mode.
    pub trip_threshold: u32,
    /// Consecutive clean health probes required to re-enter MPPT.
    pub reentry_dwell: u32,
    /// Minimum minutes to remain degraded once tripped (oscillation bound).
    pub min_degraded_minutes: u32,
    /// Fraction of the last known-good power used as the fallback budget.
    pub fallback_fraction: f64,
    /// Fallback budget floor when no good power was ever observed — the
    /// paper's lowest fixed budget keeps the chip alive without trusting
    /// the sensors.
    pub fallback_floor: Watts,
}

impl DegradeConfig {
    /// Defaults tuned for the paper's operating ranges: a ±25 % window
    /// (wide enough that 2 % sensor noise never false-trips), one retry,
    /// a 3-probe trip, 5-probe re-entry dwell and a 10-minute residence
    /// floor.
    pub fn paper_defaults() -> Self {
        Self {
            relative_window: 0.25,
            voltage_floor: Volts::new(1.0),
            current_floor: Amps::new(0.5),
            max_retries: 1,
            trip_threshold: 3,
            reentry_dwell: 5,
            min_degraded_minutes: 10,
            fallback_fraction: 0.6,
            fallback_floor: Watts::new(25.0),
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(self.relative_window > 0.0 && self.relative_window.is_finite()) {
            return Err("relative_window must be positive and finite");
        }
        if !(self.voltage_floor.get() > 0.0 && self.voltage_floor.is_finite()) {
            return Err("voltage_floor must be positive and finite");
        }
        if !(self.current_floor.get() > 0.0 && self.current_floor.is_finite()) {
            return Err("current_floor must be positive and finite");
        }
        if self.trip_threshold == 0 {
            return Err("trip_threshold must be at least 1");
        }
        if self.reentry_dwell == 0 {
            return Err("reentry_dwell must be at least 1");
        }
        if !(self.fallback_fraction > 0.0 && self.fallback_fraction <= 1.0) {
            return Err("fallback_fraction must lie in (0, 1]");
        }
        if !(self.fallback_floor.get() > 0.0 && self.fallback_floor.is_finite()) {
            return Err("fallback_floor must be positive and finite");
        }
        Ok(())
    }
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Screens sensor readings against a model-based plausibility window.
///
/// The detector is pure bookkeeping over the reading stream — it never
/// touches the sensor itself; callers hand it a re-sample closure so the
/// bounded-retry policy stays in one place.
#[derive(Debug, Clone)]
pub struct FaultDetector {
    config: DegradeConfig,
    last_good: Option<(f64, f64)>,
    prev_measured: Option<(f64, f64)>,
    prev_expected: Option<(f64, f64)>,
    rejects: u64,
    retries: u64,
}

impl FaultDetector {
    /// Builds a detector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `config` fails
    /// [`DegradeConfig::validate`].
    pub fn new(config: DegradeConfig) -> Result<Self, CoreError> {
        config
            .validate()
            .map_err(|reason| CoreError::InvalidConfig { reason })?;
        Ok(Self {
            config,
            last_good: None,
            prev_measured: None,
            prev_expected: None,
            rejects: 0,
            retries: 0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &DegradeConfig {
        &self.config
    }

    /// Total readings rejected (screened out or probe-flagged).
    pub fn reject_count(&self) -> u64 {
        self.rejects
    }

    /// Total re-sample attempts issued.
    pub fn retry_count(&self) -> u64 {
        self.retries
    }

    /// `true` when `measured` is implausible against the modeled
    /// `expected` pair: non-finite, negative, or outside the relative
    /// window (with absolute floors).
    pub fn implausible(&self, measured: (f64, f64), expected: (f64, f64)) -> bool {
        let (mv, mi) = measured;
        let (ev, ei) = expected;
        if !(mv.is_finite() && mi.is_finite()) || mv < 0.0 || mi < 0.0 {
            return true;
        }
        let v_window =
            (self.config.relative_window * ev.abs()).max(self.config.voltage_floor.get());
        let i_window =
            (self.config.relative_window * ei.abs()).max(self.config.current_floor.get());
        (mv - ev).abs() > v_window || (mi - ei).abs() > i_window
    }

    /// The stuck-sensor heuristic: the measured pair repeated bit-for-bit
    /// while the modeled truth moved more than [`TRUTH_MOTION_EPS`]. An
    /// in-window frozen reading escapes the plausibility test; this
    /// catches it.
    fn looks_stuck(&self, measured: (f64, f64), expected: (f64, f64)) -> bool {
        match (self.prev_measured, self.prev_expected) {
            (Some(pm), Some(pe)) => {
                let frozen = measured.0.to_bits() == pm.0.to_bits()
                    && measured.1.to_bits() == pm.1.to_bits();
                let truth_moved = (expected.0 - pe.0).abs() > TRUTH_MOTION_EPS
                    || (expected.1 - pe.1).abs() > TRUTH_MOTION_EPS;
                frozen && truth_moved
            }
            _ => false,
        }
    }

    /// Records the `(measured, expected)` pair for the stuck heuristic.
    fn remember(&mut self, measured: (f64, f64), expected: (f64, f64)) {
        self.prev_measured = Some(measured);
        self.prev_expected = Some(expected);
    }

    /// Screens one reading: accept it, or re-sample up to
    /// `max_retries` times, or fall back to the last good reading (the
    /// modeled value when no good reading exists yet). The returned pair
    /// is always finite and non-negative.
    pub fn screen<F: FnMut() -> (f64, f64)>(
        &mut self,
        measured: (f64, f64),
        expected: (f64, f64),
        mut resample: F,
    ) -> (f64, f64) {
        let mut reading = measured;
        let mut faulty = self.implausible(reading, expected) || self.looks_stuck(reading, expected);
        if faulty {
            for _ in 0..self.config.max_retries {
                self.retries += 1;
                reading = resample();
                faulty = self.implausible(reading, expected) || self.looks_stuck(reading, expected);
                if !faulty {
                    break;
                }
            }
        }
        self.remember(reading, expected);
        if faulty {
            self.rejects += 1;
            let held = self.last_good.unwrap_or(expected);
            (held.0.max(0.0), held.1.max(0.0))
        } else {
            self.last_good = Some(reading);
            reading
        }
    }

    /// Evaluates one health-probe reading without forwarding it, returning
    /// why it was faulty (or `None` when clean). Probes share the
    /// stuck-heuristic history with [`screen`](Self::screen) and count
    /// rejected probes in [`reject_count`](Self::reject_count).
    pub fn probe(&mut self, measured: (f64, f64), expected: (f64, f64)) -> Option<ProbeFault> {
        let fault = if self.implausible(measured, expected) {
            Some(ProbeFault::Implausible)
        } else if self.looks_stuck(measured, expected) {
            Some(ProbeFault::Stuck)
        } else {
            None
        };
        self.remember(measured, expected);
        if fault.is_some() {
            self.rejects += 1;
        } else {
            self.last_good = Some(measured);
        }
        fault
    }
}

/// Why a health probe flagged a reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeFault {
    /// Outside the model-based plausibility window (or non-finite /
    /// negative).
    Implausible,
    /// Bit-identical to the previous reading while the modeled truth
    /// moved.
    Stuck,
}

impl ProbeFault {
    /// The telemetry label for this fault class.
    pub fn label(self) -> &'static str {
        match self {
            ProbeFault::Implausible => "implausible",
            ProbeFault::Stuck => "stuck",
        }
    }
}

/// What one [`DegradationFsm::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmTransition {
    /// No mode change this minute.
    None,
    /// Tripped from MPPT into the degraded fallback mode.
    Entered,
    /// Re-entered MPPT after the hysteresis dwell.
    Exited,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Normal,
    Degraded { entered_at: u32 },
}

/// The MPPT ⇄ degraded-fallback state machine with re-entry hysteresis.
#[derive(Debug, Clone)]
pub struct DegradationFsm {
    config: DegradeConfig,
    mode: Mode,
    consecutive_faulty: u32,
    consecutive_clean: u32,
    last_good_power: Option<Watts>,
    enters: u64,
}

impl DegradationFsm {
    /// Builds the state machine (starts in normal MPPT mode).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `config` fails
    /// [`DegradeConfig::validate`].
    pub fn new(config: DegradeConfig) -> Result<Self, CoreError> {
        config
            .validate()
            .map_err(|reason| CoreError::InvalidConfig { reason })?;
        Ok(Self {
            config,
            mode: Mode::Normal,
            consecutive_faulty: 0,
            consecutive_clean: 0,
            last_good_power: None,
            enters: 0,
        })
    }

    /// `true` while operating on the conservative fallback budget.
    pub fn is_degraded(&self) -> bool {
        matches!(self.mode, Mode::Degraded { .. })
    }

    /// How many times the machine tripped into degraded mode.
    pub fn enter_count(&self) -> u64 {
        self.enters
    }

    /// Records a trusted post-tracking output power (the fallback anchor).
    pub fn note_good_power(&mut self, power: Watts) {
        if power.is_finite() && power.get() > 0.0 {
            self.last_good_power = Some(power);
        }
    }

    /// Advances the machine one health probe and returns the transition,
    /// if any. `minute` must be non-decreasing across calls.
    pub fn step(&mut self, minute: u32, faulty: bool) -> FsmTransition {
        match self.mode {
            Mode::Normal => {
                if faulty {
                    self.consecutive_faulty += 1;
                    if self.consecutive_faulty >= self.config.trip_threshold {
                        self.mode = Mode::Degraded { entered_at: minute };
                        self.consecutive_faulty = 0;
                        self.consecutive_clean = 0;
                        self.enters += 1;
                        return FsmTransition::Entered;
                    }
                } else {
                    self.consecutive_faulty = 0;
                }
                FsmTransition::None
            }
            Mode::Degraded { entered_at } => {
                if faulty {
                    self.consecutive_clean = 0;
                } else {
                    self.consecutive_clean += 1;
                }
                let dwelled = self.consecutive_clean >= self.config.reentry_dwell;
                let resided = minute.saturating_sub(entered_at) >= self.config.min_degraded_minutes;
                if dwelled && resided {
                    self.mode = Mode::Normal;
                    self.consecutive_faulty = 0;
                    self.consecutive_clean = 0;
                    return FsmTransition::Exited;
                }
                FsmTransition::None
            }
        }
    }

    /// The conservative fallback budget: a fraction of the last known-good
    /// output power (or the configured floor before any good observation),
    /// never exceeding the currently measured potential. Always finite and
    /// non-negative.
    pub fn fallback_budget(&self, measured_potential: Watts) -> Watts {
        let anchor = self
            .last_good_power
            .filter(|p| p.is_finite() && p.get() > 0.0)
            .unwrap_or(self.config.fallback_floor);
        let budget = anchor * self.config.fallback_fraction;
        let potential = if measured_potential.is_finite() {
            measured_potential.max(Watts::ZERO)
        } else {
            Watts::ZERO
        };
        budget.min(potential).max(Watts::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(DegradeConfig::paper_defaults().validate().is_ok());
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut c = DegradeConfig::paper_defaults();
        c.relative_window = 0.0;
        assert!(c.validate().is_err());
        let mut c = DegradeConfig::paper_defaults();
        c.trip_threshold = 0;
        assert!(c.validate().is_err());
        let mut c = DegradeConfig::paper_defaults();
        c.fallback_fraction = 1.5;
        assert!(c.validate().is_err());
        assert!(FaultDetector::new(c).is_err());
        assert!(DegradationFsm::new(c).is_err());
    }

    #[test]
    fn plausible_readings_pass_through() {
        let mut d = FaultDetector::new(DegradeConfig::paper_defaults()).unwrap();
        let out = d.screen((12.1, 8.2), (12.0, 8.0), || (12.1, 8.2));
        assert_eq!(out, (12.1, 8.2));
        assert_eq!(d.reject_count(), 0);
    }

    #[test]
    fn nan_readings_are_never_forwarded() {
        let mut d = FaultDetector::new(DegradeConfig::paper_defaults()).unwrap();
        // Establish a good reading first.
        d.screen((12.0, 8.0), (12.0, 8.0), || (12.0, 8.0));
        let out = d.screen((f64::NAN, f64::NAN), (11.0, 7.0), || (f64::NAN, f64::NAN));
        assert!(out.0.is_finite() && out.1.is_finite());
        assert_eq!(out, (12.0, 8.0)); // held last good
        assert_eq!(d.reject_count(), 1);
        assert_eq!(d.retry_count(), 1);
    }

    #[test]
    fn retry_can_rescue_a_glitch() {
        let mut d = FaultDetector::new(DegradeConfig::paper_defaults()).unwrap();
        let mut calls = 0;
        let out = d.screen((40.0, 0.1), (12.0, 8.0), || {
            calls += 1;
            (12.0, 8.0)
        });
        assert_eq!(calls, 1);
        assert_eq!(out, (12.0, 8.0));
        assert_eq!(d.reject_count(), 0, "rescued reading is not a reject");
        assert_eq!(d.retry_count(), 1);
    }

    #[test]
    fn hold_last_good_falls_back_to_expected_when_cold() {
        let mut d = FaultDetector::new(DegradeConfig::paper_defaults()).unwrap();
        let out = d.screen((f64::INFINITY, -3.0), (12.0, 8.0), || (f64::INFINITY, -3.0));
        assert_eq!(out, (12.0, 8.0));
    }

    #[test]
    fn stuck_in_window_readings_are_caught() {
        let mut d = FaultDetector::new(DegradeConfig::paper_defaults()).unwrap();
        // A frozen reading that stays inside the plausibility window.
        assert_eq!(d.probe((12.0, 8.0), (12.0, 8.0)), None);
        // Truth moves, measurement does not: stuck.
        assert_eq!(d.probe((12.0, 8.0), (11.0, 7.4)), Some(ProbeFault::Stuck));
        assert_eq!(d.reject_count(), 1);
        // Way-out readings are classed implausible, not stuck.
        assert_eq!(
            d.probe((40.0, 0.0), (11.0, 7.4)),
            Some(ProbeFault::Implausible)
        );
        assert_eq!(ProbeFault::Stuck.label(), "stuck");
        assert_eq!(ProbeFault::Implausible.label(), "implausible");
    }

    #[test]
    fn fsm_trips_after_threshold_and_dwells() {
        let cfg = DegradeConfig {
            trip_threshold: 3,
            reentry_dwell: 2,
            min_degraded_minutes: 5,
            ..DegradeConfig::paper_defaults()
        };
        let mut fsm = DegradationFsm::new(cfg).unwrap();
        assert_eq!(fsm.step(0, true), FsmTransition::None);
        assert_eq!(fsm.step(1, true), FsmTransition::None);
        assert_eq!(fsm.step(2, true), FsmTransition::Entered);
        assert!(fsm.is_degraded());
        // Clean probes satisfy the dwell but not the residence floor.
        assert_eq!(fsm.step(3, false), FsmTransition::None);
        assert_eq!(fsm.step(4, false), FsmTransition::None);
        assert_eq!(fsm.step(5, false), FsmTransition::None);
        assert_eq!(fsm.step(6, false), FsmTransition::None);
        // Residence satisfied at minute 7 (entered at 2, floor 5).
        assert_eq!(fsm.step(7, false), FsmTransition::Exited);
        assert!(!fsm.is_degraded());
        assert_eq!(fsm.enter_count(), 1);
    }

    #[test]
    fn single_glitches_do_not_trip() {
        let mut fsm = DegradationFsm::new(DegradeConfig::paper_defaults()).unwrap();
        for m in 0..100 {
            // Alternating faulty/clean never reaches the 3-in-a-row trip.
            assert_eq!(fsm.step(m, m % 2 == 0), FsmTransition::None);
        }
        assert_eq!(fsm.enter_count(), 0);
    }

    #[test]
    fn fallback_budget_is_feasible_and_finite() {
        let mut fsm = DegradationFsm::new(DegradeConfig::paper_defaults()).unwrap();
        // Cold: floor-anchored.
        let b = fsm.fallback_budget(Watts::new(100.0));
        assert!((b.get() - 0.6 * 25.0).abs() < 1e-12);
        // Anchored to last good power.
        fsm.note_good_power(Watts::new(80.0));
        let b = fsm.fallback_budget(Watts::new(100.0));
        assert!((b.get() - 48.0).abs() < 1e-12);
        // Clamped by measured potential.
        let b = fsm.fallback_budget(Watts::new(10.0));
        assert_eq!(b, Watts::new(10.0));
        // NaN potential sanitizes to zero.
        let b = fsm.fallback_budget(Watts::new(f64::NAN));
        assert_eq!(b, Watts::ZERO);
        // NaN good power is ignored.
        fsm.note_good_power(Watts::new(f64::NAN));
        assert!((fsm.fallback_budget(Watts::new(100.0)).get() - 48.0).abs() < 1e-12);
    }
}
