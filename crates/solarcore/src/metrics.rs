//! Aggregation helpers for the **end-of-run** evaluation metrics — the
//! scalar summaries ([`crate::engine::DayResult`], the paper's tables) that
//! exist only after a whole day has been simulated.
//!
//! This is distinct from the **streaming** observability data in
//! [`crate::telemetry`]: telemetry records are emitted minute by minute
//! while the run is still in flight and describe controller behaviour
//! (tracking spans, solver-iteration histograms); the helpers here fold
//! finished results into the numbers the figures report. The day-summary
//! telemetry event mirrors these aggregates so a JSONL stream can be
//! cross-checked against the tables without re-running anything.

/// Geometric mean of positive values; zero/negative entries are clamped to
/// a tiny epsilon so a single zero does not annihilate the mean.
///
/// The paper reports Table 7 as "the geometric mean of the errors on each
/// geographic location across different weather patterns".
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Normalizes every value by a baseline.
///
/// # Panics
///
/// Panics if `baseline` is zero or non-finite.
pub fn normalize(values: &[f64], baseline: f64) -> Vec<f64> {
    assert!(
        baseline != 0.0 && baseline.is_finite(),
        "baseline must be finite and nonzero"
    );
    values.iter().map(|v| v / baseline).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_identical_values() {
        assert!((geometric_mean(&[0.1, 0.1, 0.1]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_is_below_arithmetic_for_spread_values() {
        let v = [0.04, 0.25];
        assert!(geometric_mean(&v) < mean(&v));
        assert!((geometric_mean(&v) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn zeros_do_not_annihilate_the_geomean() {
        let g = geometric_mean(&[0.0, 0.1]);
        assert!(g >= 0.0); // finite, no NaN
        assert!(g.is_finite());
    }

    #[test]
    fn normalize_scales_by_baseline() {
        assert_eq!(normalize(&[2.0, 4.0], 2.0), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "baseline must be finite")]
    fn zero_baseline_panics() {
        let _ = normalize(&[1.0], 0.0);
    }
}
