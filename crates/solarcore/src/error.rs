//! Error types for the `solarcore` crate.

use std::error::Error;
use std::fmt;

use archsim::ArchError;
use powertrain::PowerError;
use telemetry::SinkError;

/// Errors produced by the SolarCore controller, tuner and engine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The controller configuration failed validation.
    InvalidConfig {
        /// Which constraint was violated.
        reason: &'static str,
    },
    /// A chip operation was rejected by the architecture substrate.
    Arch(ArchError),
    /// A power-delivery component rejected its configuration.
    Power(PowerError),
    /// A scheduler or TPR table promised a V/F step that does not exist —
    /// an internal consistency failure between table and chip state.
    LevelExhausted {
        /// Core whose level could not move.
        core: usize,
    },
    /// The telemetry sink rejected a record. Instrumented runs propagate
    /// this instead of silently dropping observability data.
    Telemetry(SinkError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => {
                write!(f, "invalid controller configuration: {reason}")
            }
            CoreError::Arch(e) => write!(f, "chip operation failed: {e}"),
            CoreError::Power(e) => write!(f, "power-train operation failed: {e}"),
            CoreError::LevelExhausted { core } => {
                write!(f, "core {core} has no V/F level in the requested direction")
            }
            CoreError::Telemetry(e) => write!(f, "telemetry emission failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Arch(e) => Some(e),
            CoreError::Power(e) => Some(e),
            CoreError::Telemetry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for CoreError {
    fn from(e: ArchError) -> Self {
        CoreError::Arch(e)
    }
}

impl From<PowerError> for CoreError {
    fn from(e: PowerError) -> Self {
        CoreError::Power(e)
    }
}

impl From<SinkError> for CoreError {
    fn from(e: SinkError) -> Self {
        CoreError::Telemetry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_meaningful() {
        let e = CoreError::InvalidConfig {
            reason: "max_rounds must be positive",
        };
        assert!(e.to_string().contains("max_rounds"));
        let e = CoreError::LevelExhausted { core: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn wraps_component_errors_with_sources() {
        let arch = ArchError::InvalidCore { index: 9, cores: 8 };
        let e: CoreError = arch.into();
        assert_eq!(e, CoreError::Arch(arch));
        assert!(Error::source(&e).is_some());
    }
}
