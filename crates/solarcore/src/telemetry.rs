//! The SolarCore observability contract: the schema of every telemetry
//! record the simulation engine emits, plus the engine-side instruments.
//!
//! The generic envelope (events, spans, counters, histograms, their JSONL
//! encoding) lives in the [`telemetry`] crate; *this* module pins down what
//! the engine actually says — the record names, field names and units that
//! DESIGN.md §14 documents and `crates/bench/tests/telemetry_schema.rs`
//! golden-tests against a committed stream.
//!
//! # Stability
//!
//! Names in [`schema`] are a public contract: downstream tooling
//! (`cargo xtask trace`, the JSONL artifacts in `results/`) parses them by
//! string. Adding records or fields is backwards-compatible; renaming or
//! removing any existing name is a breaking change that must update
//! DESIGN.md §14, the golden sample under `results/`, and the schema test
//! in the same PR.
//!
//! # Units
//!
//! Physical fields carry their unit as a name suffix, mirroring the
//! [`pv::units`] newtype the value was read from:
//!
//! | suffix | unit | newtype |
//! |--------|------|---------|
//! | `_w` | watts | [`pv::units::Watts`] |
//! | `_v` | volts | [`pv::units::Volts`] |
//! | `_a` | amperes | [`pv::units::Amps`] |
//! | `_wh` | watt-hours | [`pv::units::WattHours`] |
//! | `_k` | DC/DC transfer ratio (dimensionless) | — |
//!
//! Timestamps are **simulation minutes-of-day** (the `minute` envelope
//! field), never wall-clock time; a stream is bit-identical across runs,
//! threads and machines (checked by `cargo xtask determinism`).

use pv::cell::CellEnv;
use pv::error::PvError;
use pv::generator::PvGenerator;
use pv::mpp::MppPoint;
use pv::units::{Amps, Volts};
use telemetry::{Counter, Histogram};

/// Schema-stable record and field names. See the [module docs](self) for
/// the stability rules and unit conventions.
pub mod schema {
    /// Event emitted once before the first simulated minute.
    ///
    /// Fields: [`SITE`], [`SEASON`], [`DAY`], [`MIX`], [`POLICY`].
    pub const EVENT_DAY_START: &str = "day_start";

    /// Event emitted once per simulated minute, after the control loop ran.
    ///
    /// Fields: [`BUDGET_W`], [`DRAWN_W`], [`BUS_V`], [`SOURCE`],
    /// [`CHIP_POWER_W`], [`CHIP_CAPACITY_W`], [`RATIO_K`],
    /// [`INSTRUCTIONS`].
    pub const EVENT_MINUTE: &str = "minute";

    /// Event emitted on each Fixed-Power budget reallocation.
    ///
    /// Fields: [`BUDGET_W`], [`MOVES`].
    pub const EVENT_TPR_ALLOC: &str = "tpr_alloc";

    /// Event emitted once per core at end of day with its V/F residency.
    ///
    /// Fields: [`CORE`], [`GATED_MINUTES`], and one `residency_l<i>`
    /// field per V/F level (`l0` = fastest), in minutes.
    pub const EVENT_VF_RESIDENCY: &str = "vf_residency";

    /// Event emitted once after the last minute; mirrors [`DayResult`].
    ///
    /// Fields: [`TRACKING_ERROR`], [`ENERGY_DRAWN_WH`],
    /// [`ENERGY_AVAILABLE_WH`], [`UTILIZATION`], [`INSTRUCTIONS`],
    /// [`CACHE_HITS`], [`CACHE_MISSES`], [`SOLVES`], [`PV_EVALS`],
    /// [`NEWTON_ITERS_TOTAL`].
    ///
    /// [`DayResult`]: crate::engine::DayResult
    pub const EVENT_DAY_SUMMARY: &str = "day_summary";

    /// Span covering one MPPT tracking invocation (start == end minute:
    /// tracking completes within the minute it fires in).
    ///
    /// Fields: [`ROUNDS`], [`ACTIONS`], [`REVERSALS`], [`FINAL_POWER_W`],
    /// [`RATIO_K`], [`FORCED`].
    pub const SPAN_TRACK: &str = "track";

    /// Histogram of Newton/bisection iterations per PV I-V solve.
    pub const HIST_NEWTON_ITERS: &str = "newton_iters";

    /// Histogram of tuning rounds per tracking invocation.
    pub const HIST_TRACK_ROUNDS: &str = "track_rounds";

    /// Histogram of perturbation actions per tracking invocation.
    pub const HIST_TRACK_ACTIONS: &str = "track_actions";

    /// Histogram of direction reversals per tracking invocation.
    pub const HIST_TRACK_REVERSALS: &str = "track_reversals";

    /// Histogram of TPR reallocation moves per Fixed-Power budget change.
    pub const HIST_TPR_MOVES: &str = "tpr_moves";

    /// Histogram of the converter-ratio trajectory: `k` in centisteps
    /// (`round(k · 100)`) observed once per minute.
    pub const HIST_RATIO_K_CENTI: &str = "ratio_k_centi";

    /// Event emitted once per minute whose sensing health probe was
    /// flagged faulty (implausible or stuck reading).
    ///
    /// Fields: [`REASON`], [`REJECTS`], [`RETRIES`].
    pub const EVENT_FAULT_REJECT: &str = "fault_reject";

    /// Event emitted when detection confidence collapses and the engine
    /// trips from MPPT into the conservative fallback budget.
    ///
    /// Fields: [`FALLBACK_BUDGET_W`], [`REJECTS`].
    pub const EVENT_DEGRADE_ENTER: &str = "degrade_enter";

    /// Event emitted when the re-entry hysteresis dwell is satisfied and
    /// MPPT resumes.
    ///
    /// Fields: [`DWELL_MINUTES`], [`REJECTS`].
    pub const EVENT_DEGRADE_EXIT: &str = "degrade_exit";

    /// Wall-clock profiler span: trace/phase generation
    /// ([`DaySimulation::prepare`](crate::DaySimulation::prepare)).
    pub const PROF_PREPARE: &str = "prepare";

    /// Wall-clock profiler span: one full simulated day
    /// ([`DaySimulation::run_prepared`](crate::DaySimulation::run_prepared)).
    pub const PROF_RUN_DAY: &str = "run_day";

    /// Wall-clock profiler span: one TPR budget reallocation
    /// ([`allocate_budget`](crate::engine::allocate_budget) under a
    /// Fixed-Power budget or the degraded fallback).
    pub const PROF_TPR_ALLOC: &str = "tpr_alloc";

    /// Wall-clock profiler span: one MPPT tracking invocation.
    pub const PROF_MPPT_TRACK: &str = "mppt_track";

    /// Wall-clock profiler span: one campaign shard (opened by
    /// `bench::campaign`, nested above [`PROF_RUN_DAY`]).
    pub const PROF_SHARD: &str = "shard";

    /// Wall-clock profiler span: one chaos campaign cell (opened by
    /// `bench::chaos`, nested above [`PROF_RUN_DAY`]).
    pub const PROF_CHAOS_CELL: &str = "chaos_cell";

    /// Counter of PV generator MPP oracle queries.
    pub const COUNTER_MPP_QUERIES: &str = "mpp_queries";

    /// Counter of PV I-V curve evaluations through the instrumented array.
    pub const COUNTER_PV_EVALS: &str = "pv_evals";

    /// Field: site code (`"AZ"`, `"CO"`, `"NC"`, `"TN"`). Str.
    pub const SITE: &str = "site";
    /// Field: season label (`"Jan"`, `"Apr"`, `"Jul"`, `"Oct"`). Str.
    pub const SEASON: &str = "season";
    /// Field: day index within the season window. U64.
    pub const DAY: &str = "day";
    /// Field: workload-mix name (`"HM2"`, …). Str.
    pub const MIX: &str = "mix";
    /// Field: policy label (`"MPPT&Opt"`, …). Str.
    pub const POLICY: &str = "policy";
    /// Field: solar budget at the panel MPP, watts. F64.
    pub const BUDGET_W: &str = "budget_w";
    /// Field: power actually drawn from the active source, watts. F64.
    pub const DRAWN_W: &str = "drawn_w";
    /// Field: load-bus voltage, volts. F64.
    pub const BUS_V: &str = "bus_v";
    /// Field: active power source, `"solar"` or `"utility"`. Str.
    pub const SOURCE: &str = "source";
    /// Field: chip power demand after the control step, watts. F64.
    pub const CHIP_POWER_W: &str = "chip_power_w";
    /// Field: chip demand at max V/F all-ungated, watts. F64.
    pub const CHIP_CAPACITY_W: &str = "chip_capacity_w";
    /// Field: DC/DC transfer ratio `k` (dimensionless). F64.
    pub const RATIO_K: &str = "ratio_k";
    /// Field: instructions retired this minute (or total, in
    /// [`EVENT_DAY_SUMMARY`]). F64.
    pub const INSTRUCTIONS: &str = "instructions";
    /// Field: TPR reallocation moves applied. U64.
    pub const MOVES: &str = "moves";
    /// Field: core index. U64.
    pub const CORE: &str = "core";
    /// Field: minutes the core spent power-gated. U64.
    pub const GATED_MINUTES: &str = "gated_minutes";
    /// Field: tracking rounds executed. U64.
    pub const ROUNDS: &str = "rounds";
    /// Field: tuning actions executed. U64.
    pub const ACTIONS: &str = "actions";
    /// Field: perturbation direction reversals. U64.
    pub const REVERSALS: &str = "reversals";
    /// Field: output power at end of tracking, watts. F64.
    pub const FINAL_POWER_W: &str = "final_power_w";
    /// Field: `true` when tracking was forced (source transition) rather
    /// than periodic/event-triggered. Bool.
    pub const FORCED: &str = "forced";
    /// Field: mean relative tracking error over qualifying solar minutes —
    /// exactly [`DayResult::mean_tracking_error`]. F64.
    ///
    /// [`DayResult::mean_tracking_error`]: crate::engine::DayResult::mean_tracking_error
    pub const TRACKING_ERROR: &str = "tracking_error";
    /// Field: energy drawn from the array over the day, watt-hours. F64.
    pub const ENERGY_DRAWN_WH: &str = "energy_drawn_wh";
    /// Field: solar energy available at the MPP, watt-hours. F64.
    pub const ENERGY_AVAILABLE_WH: &str = "energy_available_wh";
    /// Field: drawn/available energy ratio. F64.
    pub const UTILIZATION: &str = "utilization";
    /// Field: solver-cache hits (see [`pv::CacheStats`]). U64.
    pub const CACHE_HITS: &str = "cache_hits";
    /// Field: solver-cache misses. U64.
    pub const CACHE_MISSES: &str = "cache_misses";
    /// Field: operating-point solves performed. U64.
    pub const SOLVES: &str = "solves";
    /// Field: PV I-V evaluations across all solves. U64.
    pub const PV_EVALS: &str = "pv_evals";
    /// Field: total Newton iterations across all PV evaluations. U64.
    pub const NEWTON_ITERS_TOTAL: &str = "newton_iters_total";
    /// Field: why a sensing health probe was rejected, `"implausible"` or
    /// `"stuck"`. Str.
    pub const REASON: &str = "reason";
    /// Field: cumulative readings rejected by the fault detector. U64.
    pub const REJECTS: &str = "rejects";
    /// Field: cumulative re-sample attempts issued by the detector. U64.
    pub const RETRIES: &str = "retries";
    /// Field: the conservative budget allocated while degraded, watts. F64.
    pub const FALLBACK_BUDGET_W: &str = "fallback_budget_w";
    /// Field: minutes spent in degraded mode before re-entering MPPT. U64.
    pub const DWELL_MINUTES: &str = "dwell_minutes";
    /// Field names for per-level residency minutes in
    /// [`EVENT_VF_RESIDENCY`], indexed by V/F level (`l0` = fastest). U64.
    pub const RESIDENCY_LEVELS: [&str; 6] = [
        "residency_l0",
        "residency_l1",
        "residency_l2",
        "residency_l3",
        "residency_l4",
        "residency_l5",
    ];
}

/// Bucket bounds for [`schema::HIST_NEWTON_ITERS`] (iterations per solve;
/// 0 = solver-cache hit).
pub const NEWTON_ITER_BOUNDS: &[u64] = &[0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128];

/// Bucket bounds for the per-tracking histograms (rounds/actions/reversals).
pub const TRACK_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Bucket bounds for [`schema::HIST_TPR_MOVES`].
pub const TPR_MOVE_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64];

/// Bucket bounds for [`schema::HIST_RATIO_K_CENTI`]: `k ∈ [0.8, 8.0]` in
/// 0.05 steps ⇒ centisteps 80..=800.
pub const RATIO_K_BOUNDS: &[u64] = &[100, 150, 200, 250, 300, 350, 400, 500, 600, 800];

/// The engine's per-day instruments: everything accumulated across a run
/// and snapshotted into the stream at end of day.
#[derive(Debug)]
pub struct DayInstruments {
    /// Newton/bisection iterations per PV solve.
    pub newton_iters: Histogram,
    /// Tracking rounds per invocation.
    pub track_rounds: Histogram,
    /// Tuning actions per invocation.
    pub track_actions: Histogram,
    /// Direction reversals per invocation.
    pub track_reversals: Histogram,
    /// TPR moves per Fixed-Power budget change.
    pub tpr_moves: Histogram,
    /// Converter-ratio trajectory in centisteps, sampled per minute.
    pub ratio_k_centi: Histogram,
    /// MPP oracle queries.
    pub mpp_queries: Counter,
    /// PV I-V evaluations observed by the instrumented array wrapper.
    pub pv_evals: Counter,
    /// Zero-iteration evaluations (memo hits) batched out of the hot path;
    /// folded into `pv_evals`/`newton_iters` by [`Self::fold_zero_evals`].
    zero_evals: std::cell::Cell<u64>,
}

impl Default for DayInstruments {
    fn default() -> Self {
        Self::new()
    }
}

impl DayInstruments {
    /// Creates zeroed instruments with the contract bucket layouts.
    pub fn new() -> Self {
        Self {
            newton_iters: Histogram::new(schema::HIST_NEWTON_ITERS, NEWTON_ITER_BOUNDS),
            track_rounds: Histogram::new(schema::HIST_TRACK_ROUNDS, TRACK_BOUNDS),
            track_actions: Histogram::new(schema::HIST_TRACK_ACTIONS, TRACK_BOUNDS),
            track_reversals: Histogram::new(schema::HIST_TRACK_REVERSALS, TRACK_BOUNDS),
            tpr_moves: Histogram::new(schema::HIST_TPR_MOVES, TPR_MOVE_BOUNDS),
            ratio_k_centi: Histogram::new(schema::HIST_RATIO_K_CENTI, RATIO_K_BOUNDS),
            mpp_queries: Counter::new(schema::COUNTER_MPP_QUERIES),
            pv_evals: Counter::new(schema::COUNTER_PV_EVALS),
            zero_evals: std::cell::Cell::new(0),
        }
    }

    /// Tallies one zero-iteration evaluation. A single counter bump, so
    /// the memo-hit path (~97% of a cached day's evaluations) does not pay
    /// for a full histogram record.
    pub fn note_zero_eval(&self) {
        self.zero_evals.set(self.zero_evals.get().saturating_add(1));
    }

    /// Folds the batched zero-iteration evaluations into `pv_evals` and
    /// `newton_iters`. Must run once before the instruments are
    /// snapshotted; afterwards the aggregates are exactly as if every
    /// evaluation had been recorded individually.
    pub fn fold_zero_evals(&self) {
        let n = self.zero_evals.replace(0);
        self.pv_evals.add(n);
        self.newton_iters.record_zeros(n);
    }
}

/// Pass-through [`PvGenerator`] wrapper that feeds [`DayInstruments`]:
/// every I-V evaluation records its Newton-iteration count (0 for
/// solver-cache hits) and bumps the evaluation counter; MPP queries are
/// counted. All values delegate to the counted inner path, which the `pv`
/// crate guarantees is bit-identical to the plain one — wrapping changes
/// what is *observed*, never what is *computed*.
pub struct CountingArray<'a> {
    inner: &'a dyn PvGenerator,
    instruments: &'a DayInstruments,
}

impl<'a> CountingArray<'a> {
    /// Wraps `inner`, tallying into `instruments`.
    pub fn new(inner: &'a dyn PvGenerator, instruments: &'a DayInstruments) -> Self {
        Self { inner, instruments }
    }
}

impl PvGenerator for CountingArray<'_> {
    fn open_circuit_voltage(&self, env: CellEnv) -> Volts {
        self.inner.open_circuit_voltage(env)
    }

    fn current_at(&self, env: CellEnv, voltage: Volts) -> Result<Amps, PvError> {
        Ok(self.current_at_counted(env, voltage)?.0)
    }

    fn mpp(&self, env: CellEnv) -> MppPoint {
        self.instruments.mpp_queries.incr();
        self.inner.mpp(env)
    }

    fn current_at_counted(&self, env: CellEnv, voltage: Volts) -> Result<(Amps, u32), PvError> {
        let (current, iters) = self.inner.current_at_counted(env, voltage)?;
        if iters == 0 {
            self.instruments.note_zero_eval();
        } else {
            self.instruments.pv_evals.incr();
            self.instruments.newton_iters.record(u64::from(iters));
        }
        Ok((current, iters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv::units::{Celsius, Irradiance};
    use pv::PvArray;

    #[test]
    fn counting_array_is_bit_transparent_and_tallies() {
        let array = PvArray::solarcore_default();
        let instruments = DayInstruments::new();
        let counting = CountingArray::new(&array, &instruments);
        let env = CellEnv::new(Irradiance::new(800.0), Celsius::new(30.0));
        let v = Volts::new(33.0);

        let plain = array.current_at(env, v).unwrap();
        let wrapped = counting.current_at(env, v).unwrap();
        assert_eq!(plain.get().to_bits(), wrapped.get().to_bits());
        assert_eq!(
            counting.mpp(env).power.get().to_bits(),
            array.mpp(env).power.get().to_bits()
        );
        assert_eq!(instruments.pv_evals.get(), 1);
        assert_eq!(instruments.mpp_queries.get(), 1);
        assert_eq!(instruments.newton_iters.count(), 1);
        assert!(instruments.newton_iters.sum() >= 1);
    }

    #[test]
    fn zero_eval_batching_folds_to_individual_records() {
        let batched = DayInstruments::new();
        batched.note_zero_eval();
        batched.note_zero_eval();
        batched.note_zero_eval();
        batched.pv_evals.incr();
        batched.newton_iters.record(2);
        batched.fold_zero_evals();

        let plain = DayInstruments::new();
        for _ in 0..3 {
            plain.pv_evals.incr();
            plain.newton_iters.record(0);
        }
        plain.pv_evals.incr();
        plain.newton_iters.record(2);

        assert_eq!(batched.pv_evals.get(), plain.pv_evals.get());
        assert_eq!(batched.newton_iters.count(), plain.newton_iters.count());
        assert_eq!(batched.newton_iters.sum(), plain.newton_iters.sum());
        // A second fold is a no-op: the batch cell was drained.
        batched.fold_zero_evals();
        assert_eq!(batched.pv_evals.get(), 4);
    }

    #[test]
    fn residency_fields_cover_every_vf_level() {
        assert_eq!(schema::RESIDENCY_LEVELS.len(), archsim::VfLevel::COUNT);
    }

    #[test]
    fn bucket_bounds_are_sorted() {
        for bounds in [
            NEWTON_ITER_BOUNDS,
            TRACK_BOUNDS,
            TPR_MOVE_BOUNDS,
            RATIO_K_BOUNDS,
        ] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
