//! Throughput-power ratio (TPR) computation (Section 4.3).
//!
//! The paper defines `TPR = ΔT/ΔP`: the throughput gained per additional
//! watt when a core takes one V/F step. With the paper's analytic model
//! this is `IPC·b / (3·c·V²·ΔV)`; here we compute the *discrete* ratio
//! directly from the substrate's what-if queries, which degenerates to the
//! same expression under the paper's assumptions.

use archsim::{CoreId, MultiCoreChip, VfLevel};

/// Per-core TPR entries — the table of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TprEntry {
    /// The core.
    pub core: CoreId,
    /// Its current operating point.
    pub level: VfLevel,
    /// Throughput gained per watt for one step *up* (`None` if the core is
    /// already at the top level or gated).
    pub tpr_up: Option<f64>,
    /// Throughput lost per watt for one step *down* (`None` if the core is
    /// already at the bottom level or gated).
    pub tpr_down: Option<f64>,
}

/// Builds the TPR table for the whole chip, sorted by descending `tpr_up`
/// (cores most deserving of extra power first, as in Figure 10).
pub fn tpr_table(chip: &MultiCoreChip) -> Vec<TprEntry> {
    let mut entries: Vec<TprEntry> = chip
        .cores()
        .iter()
        .map(|core| {
            let level = core.level();
            let phase = core.phase();
            let make = |to: VfLevel, from: VfLevel| -> Option<f64> {
                if core.is_gated() {
                    return None;
                }
                let dt = core.ips_at(to, phase) - core.ips_at(from, phase);
                let dp = core.power_at(to, phase).get() - core.power_at(from, phase).get();
                (dp.abs() > f64::EPSILON).then(|| dt / dp)
            };
            TprEntry {
                core: core.id(),
                level,
                tpr_up: level.faster().and_then(|f| make(f, level)),
                tpr_down: level.slower().and_then(|s| make(level, s)),
            }
        })
        .collect();
    entries.sort_by(|a, b| {
        let ka = a.tpr_up.unwrap_or(f64::NEG_INFINITY);
        let kb = b.tpr_up.unwrap_or(f64::NEG_INFINITY);
        kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
    });
    entries
}

/// The core with the highest `tpr_up` — who should receive the next watt.
pub fn best_increase(chip: &MultiCoreChip) -> Option<CoreId> {
    tpr_table(chip)
        .into_iter()
        .filter(|e| e.tpr_up.is_some())
        .map(|e| e.core)
        .next()
}

/// The core with the lowest `tpr_down` — who loses the least throughput per
/// watt freed when the budget shrinks.
pub fn best_decrease(chip: &MultiCoreChip) -> Option<CoreId> {
    tpr_table(chip)
        .into_iter()
        .filter_map(|e| e.tpr_down.map(|t| (e.core, t)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(core, _)| core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Mix;

    #[test]
    fn table_has_an_entry_per_core() {
        let chip = MultiCoreChip::new(&Mix::hm2());
        let table = tpr_table(&chip);
        assert_eq!(table.len(), 8);
    }

    #[test]
    fn top_level_cores_cannot_step_up() {
        let chip = MultiCoreChip::new(&Mix::h1()); // all boot at top
        for e in tpr_table(&chip) {
            assert!(e.tpr_up.is_none());
            assert!(e.tpr_down.is_some());
        }
        assert!(best_increase(&chip).is_none());
        assert!(best_decrease(&chip).is_some());
    }

    #[test]
    fn bottom_level_cores_cannot_step_down() {
        let mut chip = MultiCoreChip::new(&Mix::h1());
        chip.set_all_levels(VfLevel::lowest());
        for e in tpr_table(&chip) {
            assert!(e.tpr_up.is_some());
            assert!(e.tpr_down.is_none());
        }
        assert!(best_decrease(&chip).is_none());
    }

    #[test]
    fn gated_cores_are_excluded() {
        let mut chip = MultiCoreChip::new(&Mix::m2());
        chip.set_all_levels(VfLevel::from_index(3).unwrap());
        chip.gate(CoreId(0), true).unwrap();
        let table = tpr_table(&chip);
        let gated = table.iter().find(|e| e.core == CoreId(0)).unwrap();
        assert!(gated.tpr_up.is_none() && gated.tpr_down.is_none());
    }

    #[test]
    fn efficient_core_wins_the_next_watt() {
        // mesa (low EPI, high IPC) buys far more throughput per watt than
        // art (high EPI, low IPC).
        let mut chip = MultiCoreChip::new(&Mix::hm2()); // includes art & gcc
        chip.set_all_levels(VfLevel::lowest());
        let table = tpr_table(&chip);
        let first = table.first().unwrap();
        let best_spec = chip.core(first.core).unwrap().spec();
        // The winner must not be one of the high-EPI codes.
        assert!(
            !["art", "apsi"].contains(&best_spec.name),
            "winner was {}",
            best_spec.name
        );
    }

    #[test]
    fn high_epi_core_sheds_power_first() {
        let mut chip = MultiCoreChip::new(&Mix::hm2());
        chip.set_all_levels(VfLevel::from_index(2).unwrap());
        let loser = best_decrease(&chip).unwrap();
        let spec = chip.core(loser).unwrap().spec();
        assert!(
            ["art", "apsi", "mcf"].contains(&spec.name),
            "loser was {}",
            spec.name
        );
    }

    #[test]
    fn tpr_up_decreases_with_level() {
        // Diminishing returns: for the same core, stepping up from a slow
        // level buys more throughput per watt than from a fast level (the
        // paper's argument for spreading power across cores).
        let mut chip = MultiCoreChip::new(&Mix::m1());
        chip.set_all_levels(VfLevel::lowest());
        let low = tpr_table(&chip)[0].tpr_up.unwrap();
        chip.set_all_levels(VfLevel::highest().slower().unwrap());
        let high = tpr_table(&chip)[0].tpr_up.unwrap();
        assert!(low > high, "low {low:.3e} vs high {high:.3e}");
    }
}
