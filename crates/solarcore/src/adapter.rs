//! The per-core load adapter: turns "increase/decrease the load one step"
//! into V/F transitions and power gating (Section 4.3, Figure 12).

use archsim::{CoreId, MultiCoreChip};

use crate::error::CoreError;
use crate::policy::{LoadScheduler, Policy};

/// Applies scheduler-chosen V/F steps to the chip, falling back to per-core
/// power gating (PCPG) when DVFS alone cannot shed enough load.
///
/// For [`Policy::MpptChipWide`] the tuner instead moves *every* running
/// core one step at a time in lock-step, emulating a single voltage domain.
#[derive(Debug)]
pub struct LoadTuner {
    scheduler: Box<dyn LoadScheduler>,
    gated: Vec<CoreId>,
    chip_wide: bool,
}

impl LoadTuner {
    /// Builds a tuner for a policy's scheduler.
    pub fn new(policy: Policy) -> Self {
        Self {
            scheduler: policy.scheduler(),
            gated: Vec::new(),
            chip_wide: matches!(policy, Policy::MpptChipWide),
        }
    }

    /// Cores this tuner has gated, in gating order.
    pub fn gated_cores(&self) -> &[CoreId] {
        &self.gated
    }

    /// Increases the chip load by one step: ungate the most recently gated
    /// core (it resumes at its pre-gating level, i.e. the lowest, since
    /// gating only happens from the floor), otherwise speed up the
    /// scheduler-chosen core. Returns `Ok(false)` if the load is already
    /// maximal.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the scheduler hands back a core id the chip
    /// rejects or a core with no faster level — internal consistency
    /// failures between scheduler and chip state.
    pub fn increase(&mut self, chip: &mut MultiCoreChip) -> Result<bool, CoreError> {
        if let Some(id) = self.gated.pop() {
            chip.gate(id, false)?;
            return Ok(true);
        }
        if self.chip_wide {
            return self.shift_all(chip, true);
        }
        match self.scheduler.pick_increase(chip) {
            Some(id) => {
                let next = chip
                    .core(id)?
                    .level()
                    .faster()
                    .ok_or(CoreError::LevelExhausted { core: id.0 })?;
                chip.set_level(id, next)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Decreases the chip load by one step: slow down the scheduler-chosen
    /// core, or — once every running core sits at the lowest level — gate
    /// the highest-indexed running core. Returns `Ok(false)` if the chip is
    /// fully gated.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on scheduler/chip inconsistencies, as with
    /// [`Self::increase`].
    pub fn decrease(&mut self, chip: &mut MultiCoreChip) -> Result<bool, CoreError> {
        if self.chip_wide {
            if self.shift_all(chip, false)? {
                return Ok(true);
            }
            return self.gate_one(chip);
        }
        if let Some(id) = self.scheduler.pick_decrease(chip) {
            let next = chip
                .core(id)?
                .level()
                .slower()
                .ok_or(CoreError::LevelExhausted { core: id.0 })?;
            chip.set_level(id, next)?;
            return Ok(true);
        }
        // All running cores at the floor: gate one.
        self.gate_one(chip)
    }

    /// Gates the highest-indexed running core, if any.
    fn gate_one(&mut self, chip: &mut MultiCoreChip) -> Result<bool, CoreError> {
        let mut victim = None;
        for id in (0..chip.core_count()).rev().map(CoreId) {
            if !chip.core(id)?.is_gated() {
                victim = Some(id);
                break;
            }
        }
        match victim {
            Some(id) => {
                chip.gate(id, true)?;
                self.gated.push(id);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Chip-wide lock-step: move every running core one level (`true` =
    /// faster). Returns `Ok(false)` if no core could move.
    fn shift_all(&mut self, chip: &mut MultiCoreChip, faster: bool) -> Result<bool, CoreError> {
        let moves: Vec<_> = chip
            .cores()
            .iter()
            .filter(|c| !c.is_gated())
            .filter_map(|c| {
                let next = if faster {
                    c.level().faster()
                } else {
                    c.level().slower()
                };
                next.map(|n| (c.id(), n))
            })
            .collect();
        if moves.is_empty() {
            return Ok(false);
        }
        for (id, level) in moves {
            chip.set_level(id, level)?;
        }
        Ok(true)
    }

    /// Ungates every core this tuner gated (used when transferring to the
    /// utility supply, where the chip runs as a conventional CMP).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Arch`] if a remembered core id is no longer
    /// valid for the chip (the tuner was moved across chips).
    pub fn ungate_all(&mut self, chip: &mut MultiCoreChip) -> Result<(), CoreError> {
        while let Some(id) = self.gated.pop() {
            chip.gate(id, false)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::VfLevel;
    use pv::units::Watts;
    use workloads::Mix;

    #[test]
    fn increase_raises_power_decrease_lowers_it() {
        let mut chip = MultiCoreChip::new(&Mix::m2());
        chip.set_all_levels(VfLevel::from_index(3).unwrap());
        let mut tuner = LoadTuner::new(Policy::MpptOpt);
        let p0 = chip.total_power();
        assert!(tuner.increase(&mut chip).unwrap());
        let p1 = chip.total_power();
        assert!(p1 > p0);
        assert!(tuner.decrease(&mut chip).unwrap());
        assert!(tuner.decrease(&mut chip).unwrap());
        assert!(chip.total_power() < p1);
    }

    #[test]
    fn decrease_gates_cores_at_the_floor() {
        let mut chip = MultiCoreChip::new(&Mix::l1());
        chip.set_all_levels(VfLevel::lowest());
        let mut tuner = LoadTuner::new(Policy::MpptRr);
        assert!(tuner.decrease(&mut chip).unwrap());
        assert_eq!(tuner.gated_cores(), &[CoreId(7)]);
        assert!(chip.core(CoreId(7)).unwrap().is_gated());
        // Gate everything.
        for _ in 0..7 {
            assert!(tuner.decrease(&mut chip).unwrap());
        }
        assert_eq!(chip.total_power(), Watts::ZERO);
        // Fully gated: no further decrease possible.
        assert!(!tuner.decrease(&mut chip).unwrap());
    }

    #[test]
    fn increase_ungates_before_speeding_up() {
        let mut chip = MultiCoreChip::new(&Mix::l1());
        chip.set_all_levels(VfLevel::lowest());
        let mut tuner = LoadTuner::new(Policy::MpptOpt);
        tuner.decrease(&mut chip).unwrap(); // gates core 7
        tuner.decrease(&mut chip).unwrap(); // gates core 6
        assert!(tuner.increase(&mut chip).unwrap()); // ungates core 6
        assert!(!chip.core(CoreId(6)).unwrap().is_gated());
        assert!(chip.core(CoreId(7)).unwrap().is_gated());
        assert!(tuner.increase(&mut chip).unwrap()); // ungates core 7
        assert!(!chip.core(CoreId(7)).unwrap().is_gated());
        // Next increase is a V/F step.
        let levels_before: Vec<_> = chip.cores().iter().map(|c| c.level()).collect();
        assert!(tuner.increase(&mut chip).unwrap());
        let raised = chip
            .cores()
            .iter()
            .zip(&levels_before)
            .filter(|(c, before)| c.level() != **before)
            .count();
        assert_eq!(raised, 1);
    }

    #[test]
    fn increase_saturates_at_full_speed() {
        let mut chip = MultiCoreChip::new(&Mix::h1()); // boots at top
        let mut tuner = LoadTuner::new(Policy::MpptIc);
        assert!(!tuner.increase(&mut chip).unwrap());
    }

    #[test]
    fn chip_wide_tuner_moves_all_cores_in_lockstep() {
        let mut chip = MultiCoreChip::new(&Mix::m1());
        chip.set_all_levels(VfLevel::lowest());
        let mut tuner = LoadTuner::new(Policy::MpptChipWide);
        assert!(tuner.increase(&mut chip).unwrap());
        assert!(chip
            .cores()
            .iter()
            .all(|c| c.level().index() == VfLevel::lowest().index() - 1));
        assert!(tuner.decrease(&mut chip).unwrap());
        assert!(chip.cores().iter().all(|c| c.level() == VfLevel::lowest()));
        // At the floor, decrease falls back to gating.
        assert!(tuner.decrease(&mut chip).unwrap());
        assert_eq!(tuner.gated_cores(), &[CoreId(7)]);
        // Increase first ungates, then lock-steps the rest.
        assert!(tuner.increase(&mut chip).unwrap());
        assert!(tuner.gated_cores().is_empty());
    }

    #[test]
    fn chip_wide_tuner_saturates_at_top() {
        let mut chip = MultiCoreChip::new(&Mix::m1()); // boots at top
        let mut tuner = LoadTuner::new(Policy::MpptChipWide);
        assert!(!tuner.increase(&mut chip).unwrap());
    }

    #[test]
    fn ungate_all_restores_every_core() {
        let mut chip = MultiCoreChip::new(&Mix::l1());
        chip.set_all_levels(VfLevel::lowest());
        let mut tuner = LoadTuner::new(Policy::MpptOpt);
        for _ in 0..4 {
            tuner.decrease(&mut chip).unwrap();
        }
        tuner.ungate_all(&mut chip).unwrap();
        assert!(chip.cores().iter().all(|c| !c.is_gated()));
        assert!(tuner.gated_cores().is_empty());
    }
}
