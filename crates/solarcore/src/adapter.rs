//! The per-core load adapter: turns "increase/decrease the load one step"
//! into V/F transitions and power gating (Section 4.3, Figure 12).

use archsim::{CoreId, MultiCoreChip};

use crate::policy::{LoadScheduler, Policy};

/// Applies scheduler-chosen V/F steps to the chip, falling back to per-core
/// power gating (PCPG) when DVFS alone cannot shed enough load.
///
/// For [`Policy::MpptChipWide`] the tuner instead moves *every* running
/// core one step at a time in lock-step, emulating a single voltage domain.
#[derive(Debug)]
pub struct LoadTuner {
    scheduler: Box<dyn LoadScheduler>,
    gated: Vec<CoreId>,
    chip_wide: bool,
}

impl LoadTuner {
    /// Builds a tuner for a policy's scheduler.
    pub fn new(policy: Policy) -> Self {
        Self {
            scheduler: policy.scheduler(),
            gated: Vec::new(),
            chip_wide: matches!(policy, Policy::MpptChipWide),
        }
    }

    /// Cores this tuner has gated, in gating order.
    pub fn gated_cores(&self) -> &[CoreId] {
        &self.gated
    }

    /// Increases the chip load by one step: ungate the most recently gated
    /// core (it resumes at its pre-gating level, i.e. the lowest, since
    /// gating only happens from the floor), otherwise speed up the
    /// scheduler-chosen core. Returns `false` if the load is already
    /// maximal.
    pub fn increase(&mut self, chip: &mut MultiCoreChip) -> bool {
        if let Some(id) = self.gated.pop() {
            chip.gate(id, false).expect("gated id stays valid");
            return true;
        }
        if self.chip_wide {
            return self.shift_all(chip, true);
        }
        match self.scheduler.pick_increase(chip) {
            Some(id) => {
                let next = chip
                    .core(id)
                    .expect("scheduler returns valid ids")
                    .level()
                    .faster()
                    .expect("scheduler returns tunable cores");
                chip.set_level(id, next).expect("valid id");
                true
            }
            None => false,
        }
    }

    /// Decreases the chip load by one step: slow down the scheduler-chosen
    /// core, or — once every running core sits at the lowest level — gate
    /// the highest-indexed running core. Returns `false` if the chip is
    /// fully gated.
    pub fn decrease(&mut self, chip: &mut MultiCoreChip) -> bool {
        if self.chip_wide {
            if self.shift_all(chip, false) {
                return true;
            }
            return self.gate_one(chip);
        }
        if let Some(id) = self.scheduler.pick_decrease(chip) {
            let next = chip
                .core(id)
                .expect("scheduler returns valid ids")
                .level()
                .slower()
                .expect("scheduler returns tunable cores");
            chip.set_level(id, next).expect("valid id");
            return true;
        }
        // All running cores at the floor: gate one.
        self.gate_one(chip)
    }

    /// Gates the highest-indexed running core, if any.
    fn gate_one(&mut self, chip: &mut MultiCoreChip) -> bool {
        let victim = (0..chip.core_count())
            .rev()
            .map(CoreId)
            .find(|&id| !chip.core(id).expect("in range").is_gated());
        match victim {
            Some(id) => {
                chip.gate(id, true).expect("valid id");
                self.gated.push(id);
                true
            }
            None => false,
        }
    }

    /// Chip-wide lock-step: move every running core one level (`true` =
    /// faster). Returns `false` if no core could move.
    fn shift_all(&mut self, chip: &mut MultiCoreChip, faster: bool) -> bool {
        let moves: Vec<_> = chip
            .cores()
            .iter()
            .filter(|c| !c.is_gated())
            .filter_map(|c| {
                let next = if faster {
                    c.level().faster()
                } else {
                    c.level().slower()
                };
                next.map(|n| (c.id(), n))
            })
            .collect();
        if moves.is_empty() {
            return false;
        }
        for (id, level) in moves {
            chip.set_level(id, level).expect("valid id");
        }
        true
    }

    /// Ungates every core this tuner gated (used when transferring to the
    /// utility supply, where the chip runs as a conventional CMP).
    pub fn ungate_all(&mut self, chip: &mut MultiCoreChip) {
        while let Some(id) = self.gated.pop() {
            chip.gate(id, false).expect("gated id stays valid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::VfLevel;
    use pv::units::Watts;
    use workloads::Mix;

    #[test]
    fn increase_raises_power_decrease_lowers_it() {
        let mut chip = MultiCoreChip::new(&Mix::m2());
        chip.set_all_levels(VfLevel::from_index(3).unwrap());
        let mut tuner = LoadTuner::new(Policy::MpptOpt);
        let p0 = chip.total_power();
        assert!(tuner.increase(&mut chip));
        let p1 = chip.total_power();
        assert!(p1 > p0);
        assert!(tuner.decrease(&mut chip));
        assert!(tuner.decrease(&mut chip));
        assert!(chip.total_power() < p1);
    }

    #[test]
    fn decrease_gates_cores_at_the_floor() {
        let mut chip = MultiCoreChip::new(&Mix::l1());
        chip.set_all_levels(VfLevel::lowest());
        let mut tuner = LoadTuner::new(Policy::MpptRr);
        assert!(tuner.decrease(&mut chip));
        assert_eq!(tuner.gated_cores(), &[CoreId(7)]);
        assert!(chip.core(CoreId(7)).unwrap().is_gated());
        // Gate everything.
        for _ in 0..7 {
            assert!(tuner.decrease(&mut chip));
        }
        assert_eq!(chip.total_power(), Watts::ZERO);
        // Fully gated: no further decrease possible.
        assert!(!tuner.decrease(&mut chip));
    }

    #[test]
    fn increase_ungates_before_speeding_up() {
        let mut chip = MultiCoreChip::new(&Mix::l1());
        chip.set_all_levels(VfLevel::lowest());
        let mut tuner = LoadTuner::new(Policy::MpptOpt);
        tuner.decrease(&mut chip); // gates core 7
        tuner.decrease(&mut chip); // gates core 6
        assert!(tuner.increase(&mut chip)); // ungates core 6
        assert!(!chip.core(CoreId(6)).unwrap().is_gated());
        assert!(chip.core(CoreId(7)).unwrap().is_gated());
        assert!(tuner.increase(&mut chip)); // ungates core 7
        assert!(!chip.core(CoreId(7)).unwrap().is_gated());
        // Next increase is a V/F step.
        let levels_before: Vec<_> = chip.cores().iter().map(|c| c.level()).collect();
        assert!(tuner.increase(&mut chip));
        let raised = chip
            .cores()
            .iter()
            .zip(&levels_before)
            .filter(|(c, before)| c.level() != **before)
            .count();
        assert_eq!(raised, 1);
    }

    #[test]
    fn increase_saturates_at_full_speed() {
        let mut chip = MultiCoreChip::new(&Mix::h1()); // boots at top
        let mut tuner = LoadTuner::new(Policy::MpptIc);
        assert!(!tuner.increase(&mut chip));
    }

    #[test]
    fn chip_wide_tuner_moves_all_cores_in_lockstep() {
        let mut chip = MultiCoreChip::new(&Mix::m1());
        chip.set_all_levels(VfLevel::lowest());
        let mut tuner = LoadTuner::new(Policy::MpptChipWide);
        assert!(tuner.increase(&mut chip));
        assert!(chip
            .cores()
            .iter()
            .all(|c| c.level().index() == VfLevel::lowest().index() - 1));
        assert!(tuner.decrease(&mut chip));
        assert!(chip.cores().iter().all(|c| c.level() == VfLevel::lowest()));
        // At the floor, decrease falls back to gating.
        assert!(tuner.decrease(&mut chip));
        assert_eq!(tuner.gated_cores(), &[CoreId(7)]);
        // Increase first ungates, then lock-steps the rest.
        assert!(tuner.increase(&mut chip));
        assert!(tuner.gated_cores().is_empty());
    }

    #[test]
    fn chip_wide_tuner_saturates_at_top() {
        let mut chip = MultiCoreChip::new(&Mix::m1()); // boots at top
        let mut tuner = LoadTuner::new(Policy::MpptChipWide);
        assert!(!tuner.increase(&mut chip));
    }

    #[test]
    fn ungate_all_restores_every_core() {
        let mut chip = MultiCoreChip::new(&Mix::l1());
        chip.set_all_levels(VfLevel::lowest());
        let mut tuner = LoadTuner::new(Policy::MpptOpt);
        for _ in 0..4 {
            tuner.decrease(&mut chip);
        }
        tuner.ungate_all(&mut chip);
        assert!(chip.cores().iter().all(|c| !c.is_gated()));
        assert!(tuner.gated_cores().is_empty());
    }
}
