//! Property-based invariants of the graceful-degradation layer
//! (DESIGN.md §17): the fallback budget is always feasible, the re-entry
//! hysteresis bounds mode oscillation, and the reading screen never
//! forwards a non-finite or negative measurement — over randomized
//! configurations, fault patterns, and hostile sensor streams.

use proptest::prelude::*;

use pv::units::Watts;
use solarcore::{DegradationFsm, DegradeConfig, FaultDetector, FsmTransition};

/// A randomized-but-valid degradation configuration.
fn config_strategy() -> impl Strategy<Value = DegradeConfig> {
    (
        0.05f64..1.0,
        1u32..=4,
        1u32..=6,
        1u32..=8,
        0u32..=20,
        0.1f64..=1.0,
        1.0f64..100.0,
    )
        .prop_map(
            |(window, retries, trip, dwell, min_deg, fraction, floor)| DegradeConfig {
                relative_window: window,
                max_retries: retries,
                trip_threshold: trip,
                reentry_dwell: dwell,
                min_degraded_minutes: min_deg,
                fallback_fraction: fraction,
                fallback_floor: Watts::new(floor),
                ..DegradeConfig::paper_defaults()
            },
        )
}

/// An arbitrary f64 that is frequently hostile (NaN, ±∞, negative).
fn hostile_f64() -> impl Strategy<Value = f64> {
    (0u8..7, 0.0f64..200.0).prop_map(|(kind, x)| match kind {
        0..=2 => x,
        3 => f64::NAN,
        4 => f64::INFINITY,
        5 => f64::NEG_INFINITY,
        _ => -x - 1.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fallback budget is always finite, non-negative, and never
    /// exceeds the (sanitized) measured potential — no matter what power
    /// observations and potentials the day threw at the FSM.
    #[test]
    fn fallback_budget_is_always_feasible(
        config in config_strategy(),
        goods in proptest::collection::vec(hostile_f64(), 0..8),
        potential in hostile_f64(),
    ) {
        let mut fsm = DegradationFsm::new(config).expect("valid config");
        for g in goods {
            fsm.note_good_power(Watts::new(g));
        }
        let budget = fsm.fallback_budget(Watts::new(potential));
        prop_assert!(budget.is_finite());
        prop_assert!(budget.get() >= 0.0);
        let sane_potential = if potential.is_finite() { potential.max(0.0) } else { 0.0 };
        prop_assert!(budget.get() <= sane_potential + 1e-12,
            "fallback {budget} exceeds potential {sane_potential}");
    }

    /// Hysteresis bound: for any probe pattern, the FSM never exits
    /// degraded mode sooner than `max(reentry_dwell, min_degraded_minutes)`
    /// minutes after it entered, and never enters without at least
    /// `trip_threshold` minutes elapsed since the previous exit.
    #[test]
    fn fsm_never_oscillates_faster_than_its_dwell_bounds(
        config in config_strategy(),
        faults in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut fsm = DegradationFsm::new(config).expect("valid config");
        let mut entered_at: Option<u32> = None;
        let mut exited_at: Option<u32> = None;
        for (minute, faulty) in faults.iter().copied().enumerate() {
            #[allow(clippy::cast_possible_truncation)] // bounded by the vec length (< 300)
            let minute = minute as u32;
            match fsm.step(minute, faulty) {
                FsmTransition::Entered => {
                    if let Some(exit) = exited_at {
                        prop_assert!(minute - exit >= config.trip_threshold,
                            "re-tripped {} minutes after exit (threshold {})",
                            minute - exit, config.trip_threshold);
                    }
                    entered_at = Some(minute);
                }
                FsmTransition::Exited => {
                    let enter = entered_at.expect("exit without enter");
                    let dwell = minute - enter;
                    let bound = config.reentry_dwell.max(config.min_degraded_minutes);
                    prop_assert!(dwell >= bound,
                        "exited after {dwell} minutes, bound {bound}");
                    exited_at = Some(minute);
                }
                FsmTransition::None => {}
            }
        }
    }

    /// The reading screen never forwards a non-finite or negative pair,
    /// whatever garbage the sensor produced on the first reading and on
    /// every retry.
    #[test]
    fn screen_never_forwards_nan_or_out_of_bounds(
        config in config_strategy(),
        readings in proptest::collection::vec((hostile_f64(), hostile_f64()), 1..40),
        expected in proptest::collection::vec((0.0f64..50.0, 0.0f64..20.0), 1..40),
    ) {
        let mut detector = FaultDetector::new(config).expect("valid config");
        for (measured, exp) in readings.iter().zip(expected.iter().cycle()) {
            let (v, i) = detector.screen(*measured, *exp, || *measured);
            prop_assert!(v.is_finite() && i.is_finite(),
                "screen forwarded non-finite ({v}, {i}) from {measured:?}");
            prop_assert!(v >= 0.0 && i >= 0.0,
                "screen forwarded negative ({v}, {i}) from {measured:?}");
        }
    }
}
