//! Property-based invariants of the TPR table (Section 4.3) and the greedy
//! budget fill built on it, over randomized chip states: arbitrary mixes,
//! arbitrary per-core V/F levels, and arbitrary gating patterns.

use proptest::prelude::*;

use archsim::{CoreId, MultiCoreChip, VfLevel};
use pv::units::Watts;
use solarcore::engine::allocate_budget;
use solarcore::tpr::{best_increase, tpr_table};
use workloads::Mix;

/// Builds a chip in a seed-derived random state: each core gets an
/// arbitrary V/F level and may be gated (but never all cores, so the TPR
/// table keeps at least one live entry).
fn random_chip(mix_idx: usize, seed: u64) -> MultiCoreChip {
    let mix = Mix::all().swap_remove(mix_idx);
    let mut chip = MultiCoreChip::new(&mix);
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for id in 0..chip.core_count() {
        #[allow(clippy::cast_possible_truncation)] // reduced mod COUNT (= 6)
        let level_idx = next() as usize % VfLevel::COUNT;
        let level = VfLevel::from_index(level_idx).expect("index in range");
        chip.set_level(CoreId(id), level).expect("valid core id");
        let gate = next() % 4 == 0 && id + 1 != chip.core_count();
        chip.gate(CoreId(id), gate).expect("valid core id");
    }
    chip
}

/// Independent recomputation of one core's discrete step-up TPR straight
/// from the substrate's what-if queries, bypassing `tpr_table`.
fn step_up_ratio(chip: &MultiCoreChip, id: usize) -> Option<f64> {
    let core = chip.core(CoreId(id)).expect("valid core id");
    if core.is_gated() {
        return None;
    }
    let from = core.level();
    let to = from.faster()?;
    let phase = core.phase();
    let dt = core.ips_at(to, phase) - core.ips_at(from, phase);
    let dp = core.power_at(to, phase).get() - core.power_at(from, phase).get();
    (dp.abs() > f64::EPSILON).then(|| dt / dp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ordering invariant: the table is sorted by descending `tpr_up`, so
    /// the core buying the most throughput per watt (highest IPC at the
    /// lowest V², in the paper's analytic form) is offered the step first,
    /// and every entry agrees with an independent what-if recomputation.
    #[test]
    fn tpr_table_is_sorted_and_consistent(
        mix_idx in 0usize..10,
        seed in 1u64..u64::MAX,
    ) {
        let chip = random_chip(mix_idx, seed);
        let table = tpr_table(&chip);
        prop_assert_eq!(table.len(), chip.core_count());

        for pair in table.windows(2) {
            let a = pair[0].tpr_up.unwrap_or(f64::NEG_INFINITY);
            let b = pair[1].tpr_up.unwrap_or(f64::NEG_INFINITY);
            prop_assert!(
                a >= b,
                "table out of order: {:?} before {:?}", pair[0], pair[1]
            );
        }
        for entry in &table {
            let expected = step_up_ratio(&chip, entry.core.0);
            match (entry.tpr_up, expected) {
                (Some(t), Some(e)) => prop_assert!(
                    (t - e).abs() <= 1e-12 * e.abs().max(1.0),
                    "core {}: table {t} vs recomputed {e}", entry.core.0
                ),
                (None, None) => {}
                (got, want) => {
                    return Err(TestCaseError::fail(format!(
                        "core {}: table {got:?} vs recomputed {want:?}",
                        entry.core.0
                    )));
                }
            }
        }
        // best_increase attains the maximum of the independent
        // recomputation (cores running the same benchmark at the same
        // level tie exactly, so compare the ratio, not the identity).
        let max_ratio = (0..chip.core_count())
            .filter_map(|id| step_up_ratio(&chip, id))
            .fold(None::<f64>, |acc, t| Some(acc.map_or(t, |a| a.max(t))));
        match (best_increase(&chip), max_ratio) {
            (Some(core), Some(max)) => {
                let best = step_up_ratio(&chip, core.0).expect("winner can step up");
                prop_assert!(
                    (best - max).abs() <= 1e-12 * max.abs().max(1.0),
                    "best_increase picked {best}, independent max is {max}"
                );
            }
            (None, None) => {}
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "best_increase {got:?} vs independent max {want:?}"
                )));
            }
        }
    }

    /// Budget conservation: from any starting state the greedy fill lands
    /// at or under the cap, is deterministic, and never gates a core while
    /// the all-cores floor configuration would still fit.
    #[test]
    fn budget_allocation_conserves_budget(
        mix_idx in 0usize..10,
        seed in 1u64..u64::MAX,
        budget_w in 10.0..160.0_f64,
    ) {
        let budget = Watts::new(budget_w);
        let mut chip = random_chip(mix_idx, seed);
        allocate_budget(&mut chip, budget).expect("allocation succeeds");
        prop_assert!(
            chip.total_power() <= budget,
            "fill used {:?} of a {:?} cap", chip.total_power(), budget
        );

        let digest = chip.vf_digest();
        // Re-running from the post-fill state must reproduce the result
        // exactly (the controller re-allocates every tracking period).
        allocate_budget(&mut chip, budget).expect("allocation succeeds");
        prop_assert_eq!(digest, chip.vf_digest());

        let mut floor = MultiCoreChip::new(&Mix::all().swap_remove(mix_idx));
        floor.set_all_levels(VfLevel::lowest());
        if floor.total_power() <= budget {
            prop_assert!(
                chip.cores().iter().all(|c| !c.is_gated()),
                "a core was gated although the floor fits the budget"
            );
        }
    }

    /// Monotonicity: a larger budget never yields less total allocated
    /// power — the greedy fill uses slack instead of leaving it.
    #[test]
    fn budget_allocation_is_monotone(
        mix_idx in 0usize..10,
        seed in 1u64..u64::MAX,
        budget_w in 10.0..150.0_f64,
        extra_w in 0.5..30.0_f64,
    ) {
        let mut small = random_chip(mix_idx, seed);
        let mut large = random_chip(mix_idx, seed);
        allocate_budget(&mut small, Watts::new(budget_w)).expect("allocation succeeds");
        allocate_budget(&mut large, Watts::new(budget_w + extra_w)).expect("allocation succeeds");
        prop_assert!(
            large.total_power() >= small.total_power(),
            "raising the cap from {budget_w} by {extra_w} W lowered the fill"
        );
    }
}
