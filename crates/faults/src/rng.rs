//! Self-contained deterministic randomness for fault injection.
//!
//! The injection subsystem is dependency-free, so it carries its own tiny
//! generator instead of linking `rand`: a SplitMix64 stream (the same
//! recurrence the bench harness uses for its deterministic shuffles) plus a
//! Box–Muller transform for the noise-burst fault. Streams are pure
//! functions of their seed — two injectors built from the same
//! [`FaultPlan`](crate::FaultPlan) draw bit-identical samples on every run,
//! thread and machine.

/// A SplitMix64 pseudo-random stream.
///
/// Not cryptographic; chosen for its tiny state, full-period guarantee and
/// platform-independent arithmetic (wrapping u64 ops only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform sample in `[0, 1)` with 53 bits of resolution.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits so the mantissa is fully random.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A standard-normal sample (Box–Muller, cosine branch) — the same
    /// transform the `powertrain` I/V sensor uses, so noise-burst faults
    /// and baseline sensor noise share a distribution family.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_samples_live_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_is_roughly_standard() {
        let mut rng = SplitMix64::new(99);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
