//! Deterministic fault injection for the SolarCore simulation stack.
//!
//! SolarCore (HPCA 2011) rides a battery-less, volatile supply; a deployed
//! controller therefore has to survive the power train misbehaving, not
//! just the weather. This crate provides the scenario model for exercising
//! exactly that: a [`FaultPlan`] schedules typed [`FaultKind`]s on the
//! sim-time axis, a hand-rolled parser ([`parse_scenario`]) loads the
//! TOML-ish files under `scenarios/`, and a [`SensorInjector`] corrupts
//! I/V readings statefully (stuck-value latching, seeded noise bursts).
//!
//! # Design rules
//!
//! - **Dependency-free.** Like `xtask`, this crate links nothing — it works
//!   on plain scalars and carries its own [`SplitMix64`] stream — so every
//!   simulation crate can depend on it without cycles.
//! - **Deterministic.** Every query is a pure function of `(plan, minute)`;
//!   the only state (stuck latch, noise stream) is seeded from the plan.
//!   Identical plans produce bit-identical corruption on every run, thread
//!   count and input order.
//! - **Transparent when disarmed.** An empty or un-armed plan must leave
//!   the simulation bit-identical to the un-wrapped stack; the bench
//!   determinism harness pins this with a dedicated check section.
//!
//! The graceful-degradation logic that *survives* these faults lives in
//! `solarcore` (detection, hold-last-good, MPPT→fixed-budget fallback);
//! the campaign runner that measures retention lives in `bench`.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![cfg_attr(test, allow(clippy::float_cmp))]

mod inject;
mod kind;
mod parser;
mod plan;
mod rng;

pub use inject::SensorInjector;
pub use kind::{FaultKind, SensorChannel};
pub use parser::parse_scenario;
pub use plan::{
    AtsOverride, CoreConstraint, FaultError, FaultPlan, ScheduledFault, SensorDisturbance,
};
pub use rng::SplitMix64;
