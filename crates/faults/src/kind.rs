//! The fault taxonomy: every disturbance the chaos harness can schedule.
//!
//! Each variant models a failure mode a deployed SolarCore system must ride
//! out (DESIGN.md §17): sensing faults corrupt what the controller *sees*,
//! power-train faults corrupt what the actuators *do*, chip faults remove
//! load capacity, and environment faults go beyond the stochastic cloud
//! model (e.g. a monsoon shelf cutting irradiance off a cliff).

/// Which of the paired I/V sensor channels a sensing fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorChannel {
    /// Only the voltage sense line.
    Voltage,
    /// Only the current sense line.
    Current,
    /// Both channels together (e.g. a shared ADC reference failing).
    Both,
}

/// One typed fault, scheduled over a window on the sim-time axis.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The sensor freezes: every reading in the window repeats the first
    /// value observed after onset (a latched sample-and-hold).
    SensorStuck {
        /// Affected channel(s).
        channel: SensorChannel,
    },
    /// The sensor drops out entirely: readings become NaN (an unpowered or
    /// disconnected sense line). The detector must never forward these.
    SensorDropout,
    /// Multiplicative calibration drift: readings are scaled by
    /// `1 + rate · minutes_since_onset`, modelling a reference slowly
    /// walking away (thermal drift, aging).
    SensorBiasDrift {
        /// Relative drift per minute (e.g. `0.02` = +2 %/min).
        rate_per_minute: f64,
    },
    /// A burst of extra multiplicative Gaussian noise on both channels,
    /// drawn from the plan's seeded stream.
    SensorNoiseBurst {
        /// Relative standard deviation of the burst noise.
        sigma: f64,
    },
    /// DC/DC conversion-efficiency derating: the converter's efficiency is
    /// scaled by a factor ramping linearly from `factor_start` at window
    /// onset to `factor_end` at window close (aging capacitors, thermal
    /// derating).
    ConverterDerate {
        /// Efficiency factor at window start, in `(0, 1]`.
        factor_start: f64,
        /// Efficiency factor at window end, in `(0, 1]`.
        factor_end: f64,
    },
    /// Δk-step actuator lag: ratio nudges are queued and applied `steps`
    /// commands late (a slow or bus-contended converter MCU).
    ActuatorLag {
        /// Queue depth in nudge commands; `1` = every nudge lands one
        /// command late.
        steps: u32,
    },
    /// ATS flapping: the transfer switch is forced to alternate sources
    /// every `period_minutes`, regardless of available solar power (a
    /// failing changeover relay).
    AtsFlap {
        /// Half-cycle length in minutes (≥ 1).
        period_minutes: u32,
    },
    /// Per-core thermal throttle: the core may not run faster than the
    /// given V/F level for the window.
    CoreThrottle {
        /// Core index.
        core: usize,
        /// Slowest-allowed V/F level index (`0` = fastest ladder point;
        /// the core is clamped to indices ≥ this).
        max_level_index: usize,
    },
    /// Core loss: the core is force-gated for the window (a dead or
    /// fenced-off core).
    CoreLoss {
        /// Core index.
        core: usize,
    },
    /// Irradiance cliff transient: panel irradiance is scaled by a factor
    /// falling linearly from 1 to `factor` over `ramp_minutes`, then held
    /// until the window closes — sharper than anything the cloud model's
    /// autocorrelated process produces.
    IrradianceCliff {
        /// Floor factor in `[0, 1]`.
        factor: f64,
        /// Minutes over which the factor ramps from 1 down to `factor`
        /// (`0` = instantaneous cliff).
        ramp_minutes: u32,
    },
}

impl FaultKind {
    /// `true` for faults that corrupt the I/V sensor path.
    pub fn is_sensor_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::SensorStuck { .. }
                | FaultKind::SensorDropout
                | FaultKind::SensorBiasDrift { .. }
                | FaultKind::SensorNoiseBurst { .. }
        )
    }

    /// A stable label for reports and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::SensorStuck { .. } => "sensor_stuck",
            FaultKind::SensorDropout => "sensor_dropout",
            FaultKind::SensorBiasDrift { .. } => "sensor_bias_drift",
            FaultKind::SensorNoiseBurst { .. } => "sensor_noise_burst",
            FaultKind::ConverterDerate { .. } => "converter_derate",
            FaultKind::ActuatorLag { .. } => "actuator_lag",
            FaultKind::AtsFlap { .. } => "ats_flap",
            FaultKind::CoreThrottle { .. } => "core_throttle",
            FaultKind::CoreLoss { .. } => "core_loss",
            FaultKind::IrradianceCliff { .. } => "irradiance_cliff",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_faults_are_classified() {
        assert!(FaultKind::SensorDropout.is_sensor_fault());
        assert!(FaultKind::SensorStuck {
            channel: SensorChannel::Both
        }
        .is_sensor_fault());
        assert!(!FaultKind::CoreLoss { core: 0 }.is_sensor_fault());
        assert!(!FaultKind::AtsFlap { period_minutes: 5 }.is_sensor_fault());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::SensorDropout.label(), "sensor_dropout");
        assert_eq!(
            FaultKind::IrradianceCliff {
                factor: 0.2,
                ramp_minutes: 0
            }
            .label(),
            "irradiance_cliff"
        );
    }
}
