//! Stateful sensor injection: turns a [`FaultPlan`]'s sensing faults into a
//! per-run corruptor for I/V readings.
//!
//! The injector is the only stateful piece of the subsystem — it latches the
//! stuck value and advances the seeded noise stream. Everything it does is a
//! deterministic function of `(plan, sequence of set_minute/inject calls)`,
//! so two runs feeding it the same readings observe the same corruption.

use crate::kind::SensorChannel;
use crate::plan::{FaultPlan, SensorDisturbance};
use crate::rng::SplitMix64;

/// Corrupts `(voltage, current)` sensor readings according to a plan.
#[derive(Debug, Clone)]
pub struct SensorInjector {
    plan: FaultPlan,
    minute: u32,
    /// Latched `(v, i)` for an in-progress stuck window; cleared when the
    /// window ends so a later stuck window latches afresh.
    stuck: Option<(f64, f64)>,
    noise: SplitMix64,
}

impl SensorInjector {
    /// Builds an injector for `plan`, with the noise stream seeded from the
    /// plan's seed (offset so it never collides with other plan-derived
    /// streams).
    pub fn new(plan: &FaultPlan) -> Self {
        let seed = plan.seed() ^ 0x5e40_12fa_11c7_0a3d;
        Self {
            plan: plan.clone(),
            minute: 0,
            stuck: None,
            noise: SplitMix64::new(seed),
        }
    }

    /// Advances sim time; queries after this apply the faults active at
    /// `minute`.
    pub fn set_minute(&mut self, minute: u32) {
        self.minute = minute;
        if !matches!(
            self.plan.sensor_disturbance_at(minute),
            Some(SensorDisturbance::Stuck(_))
        ) {
            self.stuck = None;
        }
    }

    /// `true` when any sensing fault is active right now.
    pub fn active(&self) -> bool {
        self.plan.sensor_disturbance_at(self.minute).is_some()
    }

    /// Corrupts one `(voltage, current)` reading pair.
    ///
    /// With no active sensing fault this is the identity — callers on the
    /// hot path should additionally skip the call entirely when no plan is
    /// armed, so the disarmed stack stays bit-identical.
    pub fn inject(&mut self, voltage: f64, current: f64) -> (f64, f64) {
        match self.plan.sensor_disturbance_at(self.minute) {
            None => (voltage, current),
            Some(SensorDisturbance::Stuck(channel)) => {
                let (sv, si) = *self.stuck.get_or_insert((voltage, current));
                match channel {
                    SensorChannel::Voltage => (sv, current),
                    SensorChannel::Current => (voltage, si),
                    SensorChannel::Both => (sv, si),
                }
            }
            Some(SensorDisturbance::Dropout) => (f64::NAN, f64::NAN),
            Some(SensorDisturbance::Bias(factor)) => (voltage * factor, current * factor),
            Some(SensorDisturbance::Noise(sigma)) => {
                let nv = 1.0 + sigma * self.noise.normal();
                let ni = 1.0 + sigma * self.noise.normal();
                ((voltage * nv).max(0.0), (current * ni).max(0.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::FaultKind;
    use crate::plan::ScheduledFault;

    fn plan_with(kind: FaultKind, start: u32, end: u32) -> FaultPlan {
        let mut plan = FaultPlan::new("t", 77);
        plan.schedule(ScheduledFault {
            start_minute: start,
            end_minute: end,
            kind,
        })
        .unwrap();
        plan
    }

    #[test]
    fn identity_outside_windows() {
        let plan = plan_with(FaultKind::SensorDropout, 100, 110);
        let mut inj = SensorInjector::new(&plan);
        inj.set_minute(50);
        assert!(!inj.active());
        assert_eq!(inj.inject(24.0, 3.0), (24.0, 3.0));
    }

    #[test]
    fn stuck_latches_first_post_onset_reading() {
        let plan = plan_with(
            FaultKind::SensorStuck {
                channel: SensorChannel::Both,
            },
            100,
            110,
        );
        let mut inj = SensorInjector::new(&plan);
        inj.set_minute(100);
        assert_eq!(inj.inject(24.0, 3.0), (24.0, 3.0));
        inj.set_minute(105);
        assert_eq!(inj.inject(30.0, 4.0), (24.0, 3.0));
        // Window ends: latch clears and readings flow again.
        inj.set_minute(111);
        assert_eq!(inj.inject(30.0, 4.0), (30.0, 4.0));
    }

    #[test]
    fn stuck_single_channel_passes_the_other() {
        let plan = plan_with(
            FaultKind::SensorStuck {
                channel: SensorChannel::Voltage,
            },
            0,
            10,
        );
        let mut inj = SensorInjector::new(&plan);
        inj.set_minute(0);
        assert_eq!(inj.inject(24.0, 3.0), (24.0, 3.0));
        assert_eq!(inj.inject(26.0, 3.5), (24.0, 3.5));
    }

    #[test]
    fn dropout_yields_nan() {
        let plan = plan_with(FaultKind::SensorDropout, 0, 10);
        let mut inj = SensorInjector::new(&plan);
        inj.set_minute(5);
        let (v, i) = inj.inject(24.0, 3.0);
        assert!(v.is_nan() && i.is_nan());
    }

    #[test]
    fn noise_is_deterministic_per_plan_seed() {
        let plan = plan_with(FaultKind::SensorNoiseBurst { sigma: 0.1 }, 0, 100);
        let mut a = SensorInjector::new(&plan);
        let mut b = SensorInjector::new(&plan);
        for m in 0..50 {
            a.set_minute(m);
            b.set_minute(m);
            assert_eq!(a.inject(24.0, 3.0), b.inject(24.0, 3.0));
        }
    }

    #[test]
    fn noise_clamps_non_negative() {
        let plan = plan_with(FaultKind::SensorNoiseBurst { sigma: 50.0 }, 0, 1000);
        let mut inj = SensorInjector::new(&plan);
        inj.set_minute(0);
        for _ in 0..200 {
            let (v, i) = inj.inject(1.0, 1.0);
            assert!(v >= 0.0 && i >= 0.0);
        }
    }
}
