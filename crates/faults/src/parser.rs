//! Hand-rolled parser for the TOML-ish scenario files under `scenarios/`.
//!
//! The format is deliberately tiny (same dependency-free spirit as xtask's
//! report tooling): one `[scenario]` header block with `key = value` lines,
//! then any number of `[[fault]]` blocks. Values are double-quoted strings
//! or bare numbers; `#` starts a comment. Example:
//!
//! ```text
//! [scenario]
//! name = "stuck_noon"
//! seed = 42
//! site = "AZ"          # optional hints the campaign runner may honour
//! season = "Jul"
//! day = 0
//!
//! [[fault]]
//! kind = "sensor_stuck"
//! channel = "both"
//! start = 720
//! end = 765
//! ```
//!
//! Every error carries the 1-based line number of the offending line.

use crate::kind::{FaultKind, SensorChannel};
use crate::plan::{FaultError, FaultPlan, ScheduledFault};

/// Parses scenario text into a validated [`FaultPlan`].
///
/// # Errors
///
/// Returns [`FaultError::Parse`] with a line number for malformed text, or
/// [`FaultError::InvalidFault`] when a block parses but fails validation.
pub fn parse_scenario(text: &str) -> Result<FaultPlan, FaultError> {
    let mut scenario: Vec<(usize, String, String)> = Vec::new();
    let mut fault_blocks: Vec<Vec<(usize, String, String)>> = Vec::new();
    let mut section = Section::None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[scenario]" {
            if !scenario.is_empty() || !fault_blocks.is_empty() {
                return err(
                    line_no,
                    "[scenario] must be the first block and appear once",
                );
            }
            section = Section::Scenario;
            continue;
        }
        if line == "[[fault]]" {
            fault_blocks.push(Vec::new());
            section = Section::Fault;
            continue;
        }
        if line.starts_with('[') {
            return err(
                line_no,
                "unknown block header (expected [scenario] or [[fault]])",
            );
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(line_no, "expected `key = value`");
        };
        let entry = (line_no, key.trim().to_owned(), value.trim().to_owned());
        match section {
            Section::None => return err(line_no, "key before any block header"),
            Section::Scenario => scenario.push(entry),
            Section::Fault => {
                if let Some(block) = fault_blocks.last_mut() {
                    block.push(entry);
                }
            }
        }
    }

    let mut name = None;
    let mut seed = 0u64;
    let mut site = None;
    let mut season = None;
    let mut day = None;
    for (line_no, key, value) in &scenario {
        match key.as_str() {
            "name" => name = Some(string_value(*line_no, value)?),
            "seed" => seed = int_value(*line_no, value)?,
            "site" => site = Some(string_value(*line_no, value)?),
            "season" => season = Some(string_value(*line_no, value)?),
            "day" => day = Some(narrow(*line_no, int_value(*line_no, value)?)?),
            _ => return err(*line_no, "unknown [scenario] key"),
        }
    }
    let Some(name) = name else {
        return err(1, "[scenario] block must set `name`");
    };

    let mut plan = FaultPlan::new(&name, seed);
    plan.set_hints(site, season, day);
    for block in &fault_blocks {
        plan.schedule(parse_fault_block(block)?)?;
    }
    Ok(plan)
}

#[derive(Clone, Copy)]
enum Section {
    None,
    Scenario,
    Fault,
}

fn parse_fault_block(entries: &[(usize, String, String)]) -> Result<ScheduledFault, FaultError> {
    let block_line = entries.first().map_or(1, |(l, _, _)| *l);
    let find = |key: &str| -> Option<(usize, &str)> {
        entries
            .iter()
            .find(|(_, k, _)| k == key)
            .map(|(l, _, v)| (*l, v.as_str()))
    };
    let number = |key: &str| -> Result<f64, FaultError> {
        let Some((line, v)) = find(key) else {
            return Err(FaultError::Parse {
                line: block_line,
                reason: format!("[[fault]] block missing `{key}`"),
            });
        };
        number_value(line, v)
    };
    let int = |key: &str| -> Result<u64, FaultError> {
        let Some((line, v)) = find(key) else {
            return Err(FaultError::Parse {
                line: block_line,
                reason: format!("[[fault]] block missing `{key}`"),
            });
        };
        int_value(line, v)
    };

    let Some((kind_line, kind_raw)) = find("kind") else {
        return err(block_line, "[[fault]] block missing `kind`");
    };
    let kind_name = string_value(kind_line, kind_raw)?;

    let kind = match kind_name.as_str() {
        "sensor_stuck" => {
            let channel = match find("channel") {
                None => SensorChannel::Both,
                Some((line, v)) => match string_value(line, v)?.as_str() {
                    "voltage" => SensorChannel::Voltage,
                    "current" => SensorChannel::Current,
                    "both" => SensorChannel::Both,
                    _ => return err(line, "`channel` must be voltage, current or both"),
                },
            };
            FaultKind::SensorStuck { channel }
        }
        "sensor_dropout" => FaultKind::SensorDropout,
        "sensor_bias_drift" => FaultKind::SensorBiasDrift {
            rate_per_minute: number("rate_per_minute")?,
        },
        "sensor_noise_burst" => FaultKind::SensorNoiseBurst {
            sigma: number("sigma")?,
        },
        "converter_derate" => FaultKind::ConverterDerate {
            factor_start: number("factor_start")?,
            factor_end: number("factor_end")?,
        },
        "actuator_lag" => FaultKind::ActuatorLag {
            steps: narrow(block_line, int("steps")?)?,
        },
        "ats_flap" => FaultKind::AtsFlap {
            period_minutes: narrow(block_line, int("period_minutes")?)?,
        },
        "core_throttle" => FaultKind::CoreThrottle {
            core: narrow(block_line, int("core")?)?,
            max_level_index: narrow(block_line, int("max_level_index")?)?,
        },
        "core_loss" => FaultKind::CoreLoss {
            core: narrow(block_line, int("core")?)?,
        },
        "irradiance_cliff" => FaultKind::IrradianceCliff {
            factor: number("factor")?,
            ramp_minutes: match find("ramp_minutes") {
                None => 0,
                Some(_) => narrow(block_line, int("ramp_minutes")?)?,
            },
        },
        _ => return err(kind_line, "unknown fault kind"),
    };

    Ok(ScheduledFault {
        start_minute: narrow(block_line, int("start")?)?,
        end_minute: narrow(block_line, int("end")?)?,
        kind,
    })
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn string_value(line: usize, raw: &str) -> Result<String, FaultError> {
    let raw = raw.trim();
    if raw.len() >= 2 && raw.starts_with('"') && raw.ends_with('"') {
        Ok(raw[1..raw.len() - 1].to_owned())
    } else {
        Err(FaultError::Parse {
            line,
            reason: "expected a double-quoted string".to_owned(),
        })
    }
}

fn number_value(line: usize, raw: &str) -> Result<f64, FaultError> {
    raw.trim().parse::<f64>().map_err(|_| FaultError::Parse {
        line,
        reason: format!("expected a number, got `{}`", raw.trim()),
    })
}

fn int_value(line: usize, raw: &str) -> Result<u64, FaultError> {
    raw.trim().parse::<u64>().map_err(|_| FaultError::Parse {
        line,
        reason: format!("expected a non-negative integer, got `{}`", raw.trim()),
    })
}

/// Narrows a parsed integer into the field's width with a line-anchored
/// error instead of a silent truncation.
fn narrow<T: TryFrom<u64>>(line: usize, x: u64) -> Result<T, FaultError> {
    T::try_from(x).map_err(|_| FaultError::Parse {
        line,
        reason: format!("integer `{x}` out of range for this field"),
    })
}

fn err<T>(line: usize, reason: &str) -> Result<T, FaultError> {
    Err(FaultError::Parse {
        line,
        reason: reason.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# canonical stuck-sensor scenario
[scenario]
name = "stuck_noon"
seed = 42
site = "AZ"     # hint only
season = "Jul"
day = 0

[[fault]]
kind = "sensor_stuck"
channel = "both"
start = 720
end = 765

[[fault]]
kind = "irradiance_cliff"
factor = 0.25
ramp_minutes = 5
start = 800
end = 860
"#;

    #[test]
    fn parses_the_sample_scenario() {
        let plan = parse_scenario(SAMPLE).unwrap();
        assert_eq!(plan.name(), "stuck_noon");
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.site_hint(), Some("AZ"));
        assert_eq!(plan.season_hint(), Some("Jul"));
        assert_eq!(plan.day_hint(), Some(0));
        assert_eq!(plan.faults().len(), 2);
        assert_eq!(plan.first_onset(), Some(720));
        assert!(plan.has_irradiance_faults());
        assert_eq!(
            plan.faults()[0].kind,
            FaultKind::SensorStuck {
                channel: SensorChannel::Both
            }
        );
    }

    #[test]
    fn every_kind_round_trips() {
        let text = r#"
[scenario]
name = "all"
seed = 7

[[fault]]
kind = "sensor_dropout"
start = 0
end = 1

[[fault]]
kind = "sensor_bias_drift"
rate_per_minute = 0.02
start = 0
end = 1

[[fault]]
kind = "sensor_noise_burst"
sigma = 0.1
start = 0
end = 1

[[fault]]
kind = "converter_derate"
factor_start = 1.0
factor_end = 0.6
start = 0
end = 1

[[fault]]
kind = "actuator_lag"
steps = 3
start = 0
end = 1

[[fault]]
kind = "ats_flap"
period_minutes = 5
start = 0
end = 1

[[fault]]
kind = "core_throttle"
core = 2
max_level_index = 4
start = 0
end = 1

[[fault]]
kind = "core_loss"
core = 1
start = 0
end = 1

[[fault]]
kind = "irradiance_cliff"
factor = 0.3
start = 0
end = 1
"#;
        let plan = parse_scenario(text).unwrap();
        assert_eq!(plan.faults().len(), 9);
        assert_eq!(
            plan.faults()[8].kind,
            FaultKind::IrradianceCliff {
                factor: 0.3,
                ramp_minutes: 0
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad =
            "[scenario]\nname = \"x\"\n\n[[fault]]\nkind = \"no_such_kind\"\nstart = 0\nend = 1\n";
        match parse_scenario(bad) {
            Err(FaultError::Parse { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
        match parse_scenario("name = \"x\"\n") {
            Err(FaultError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        match parse_scenario("[scenario]\nname = unquoted\n") {
            Err(FaultError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_name_is_rejected() {
        assert!(parse_scenario("[scenario]\nseed = 1\n").is_err());
    }

    #[test]
    fn invalid_fault_surfaces_validation_error() {
        let bad =
            "[scenario]\nname = \"x\"\n[[fault]]\nkind = \"sensor_dropout\"\nstart = 10\nend = 5\n";
        match parse_scenario(bad) {
            Err(FaultError::InvalidFault { kind, .. }) => assert_eq!(kind, "sensor_dropout"),
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn comments_inside_strings_survive() {
        let text = "[scenario]\nname = \"has # hash\"\n";
        assert_eq!(parse_scenario(text).unwrap().name(), "has # hash");
    }
}
