//! The `FaultPlan` scenario model: typed faults scheduled on the sim-time
//! axis, plus the per-minute queries the injection seams evaluate.
//!
//! A plan is pure data — building or querying one has no side effects, and
//! every query is a pure function of `(plan, minute)`, so injection is
//! deterministic under any thread count or evaluation order. Stateful
//! behaviour (stuck-value capture, noise streams) lives in
//! [`SensorInjector`](crate::SensorInjector), which is constructed *from*
//! a plan per run.

use crate::kind::{FaultKind, SensorChannel};

/// Validation or parse failure for a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A scheduled fault failed validation.
    InvalidFault {
        /// The fault's label ([`FaultKind::label`]).
        kind: &'static str,
        /// The violated constraint.
        reason: &'static str,
    },
    /// The scenario text failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InvalidFault { kind, reason } => {
                write!(f, "invalid `{kind}` fault: {reason}")
            }
            FaultError::Parse { line, reason } => {
                write!(f, "scenario parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// One fault active over an inclusive `[start, end]` minute-of-day window.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// First minute-of-day the fault is active.
    pub start_minute: u32,
    /// Last minute-of-day the fault is active (inclusive).
    pub end_minute: u32,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl ScheduledFault {
    /// `true` while `minute` lies inside the fault window.
    pub fn active_at(&self, minute: u32) -> bool {
        minute >= self.start_minute && minute <= self.end_minute
    }

    /// Validates the window and the kind's parameters.
    fn validate(&self) -> Result<(), FaultError> {
        let fail = |reason| {
            Err(FaultError::InvalidFault {
                kind: self.kind.label(),
                reason,
            })
        };
        if self.start_minute > self.end_minute {
            return fail("window start must not exceed its end");
        }
        if self.end_minute > 1439 {
            return fail("window must end within the civil day (minute <= 1439)");
        }
        match self.kind {
            FaultKind::SensorStuck { .. }
            | FaultKind::SensorDropout
            | FaultKind::CoreLoss { .. } => Ok(()),
            FaultKind::SensorBiasDrift { rate_per_minute } => {
                if rate_per_minute.is_finite() {
                    Ok(())
                } else {
                    fail("drift rate must be finite")
                }
            }
            FaultKind::SensorNoiseBurst { sigma } => {
                if sigma.is_finite() && sigma >= 0.0 {
                    Ok(())
                } else {
                    fail("noise sigma must be finite and non-negative")
                }
            }
            FaultKind::ConverterDerate {
                factor_start,
                factor_end,
            } => {
                let ok = |x: f64| x.is_finite() && x > 0.0 && x <= 1.0;
                if ok(factor_start) && ok(factor_end) {
                    Ok(())
                } else {
                    fail("derate factors must lie in (0, 1]")
                }
            }
            FaultKind::ActuatorLag { steps } => {
                if steps >= 1 {
                    Ok(())
                } else {
                    fail("actuator lag must queue at least one step")
                }
            }
            FaultKind::AtsFlap { period_minutes } => {
                if period_minutes >= 1 {
                    Ok(())
                } else {
                    fail("flap period must be at least one minute")
                }
            }
            FaultKind::CoreThrottle {
                max_level_index, ..
            } => {
                // The chip ladder has a small fixed depth; anything larger
                // is a scenario typo, not a throttle.
                if max_level_index < 16 {
                    Ok(())
                } else {
                    fail("throttle level index is implausibly deep")
                }
            }
            FaultKind::IrradianceCliff { factor, .. } => {
                if factor.is_finite() && (0.0..=1.0).contains(&factor) {
                    Ok(())
                } else {
                    fail("cliff factor must lie in [0, 1]")
                }
            }
        }
    }
}

/// The sensing disturbance active at one minute, resolved from the plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorDisturbance {
    /// Hold the first post-onset reading.
    Stuck(SensorChannel),
    /// Readings are NaN.
    Dropout,
    /// Scale both channels by this factor.
    Bias(f64),
    /// Extra multiplicative Gaussian noise of this sigma.
    Noise(f64),
}

/// A forced ATS position during a flap window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtsOverride {
    /// Force the switch onto grid utility.
    ForceUtility,
    /// Force the switch onto the PV array.
    ForceSolar,
}

/// A per-core availability constraint active at one minute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreConstraint {
    /// Clamp the core at or below this V/F ladder index (`0` = fastest).
    Throttle {
        /// Core index.
        core: usize,
        /// Slowest-allowed ladder index floor.
        max_level_index: usize,
    },
    /// Force-gate the core.
    Loss {
        /// Core index.
        core: usize,
    },
}

/// A named, seeded schedule of typed faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    name: String,
    seed: u64,
    faults: Vec<ScheduledFault>,
    site_hint: Option<String>,
    season_hint: Option<String>,
    day_hint: Option<u32>,
}

impl FaultPlan {
    /// An empty (no-fault) plan — arming it must be bit-transparent, which
    /// the determinism harness enforces.
    pub fn empty(name: &str) -> Self {
        Self::new(name, 0)
    }

    /// A plan with no faults yet, seeded for its stochastic kinds.
    pub fn new(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_owned(),
            seed,
            faults: Vec::new(),
            site_hint: None,
            season_hint: None,
            day_hint: None,
        }
    }

    /// Schedules one fault after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidFault`] for inverted windows or
    /// out-of-range parameters.
    pub fn schedule(&mut self, fault: ScheduledFault) -> Result<(), FaultError> {
        fault.validate()?;
        self.faults.push(fault);
        Ok(())
    }

    /// The scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The seed for the plan's stochastic faults (noise bursts).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scenario's preferred site code, if the file named one.
    pub fn site_hint(&self) -> Option<&str> {
        self.site_hint.as_deref()
    }

    /// The scenario's preferred season label, if the file named one.
    pub fn season_hint(&self) -> Option<&str> {
        self.season_hint.as_deref()
    }

    /// The scenario's preferred weather-day index, if the file named one.
    pub fn day_hint(&self) -> Option<u32> {
        self.day_hint
    }

    /// Sets the site/season/day hints (used by the parser).
    pub(crate) fn set_hints(
        &mut self,
        site: Option<String>,
        season: Option<String>,
        day: Option<u32>,
    ) {
        self.site_hint = site;
        self.season_hint = season;
        self.day_hint = day;
    }

    /// The earliest fault onset, if any — the reference point for
    /// detection-latency measurements.
    pub fn first_onset(&self) -> Option<u32> {
        self.faults.iter().map(|f| f.start_minute).min()
    }

    /// An FNV-1a digest over every scheduled fault, seed and name —
    /// used to tag prepared simulation setups so a setup prepared under
    /// one plan cannot silently be replayed under another.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.name);
        h.u64(self.seed);
        for f in &self.faults {
            h.u64(u64::from(f.start_minute));
            h.u64(u64::from(f.end_minute));
            h.str(f.kind.label());
            match f.kind {
                FaultKind::SensorStuck { channel } => h.u64(match channel {
                    SensorChannel::Voltage => 0,
                    SensorChannel::Current => 1,
                    SensorChannel::Both => 2,
                }),
                FaultKind::SensorDropout => {}
                FaultKind::SensorBiasDrift { rate_per_minute } => h.f64(rate_per_minute),
                FaultKind::SensorNoiseBurst { sigma } => h.f64(sigma),
                FaultKind::ConverterDerate {
                    factor_start,
                    factor_end,
                } => {
                    h.f64(factor_start);
                    h.f64(factor_end);
                }
                FaultKind::ActuatorLag { steps } => h.u64(u64::from(steps)),
                FaultKind::AtsFlap { period_minutes } => h.u64(u64::from(period_minutes)),
                FaultKind::CoreThrottle {
                    core,
                    max_level_index,
                } => {
                    h.u64(core as u64);
                    h.u64(max_level_index as u64);
                }
                FaultKind::CoreLoss { core } => h.u64(core as u64),
                FaultKind::IrradianceCliff {
                    factor,
                    ramp_minutes,
                } => {
                    h.f64(factor);
                    h.u64(u64::from(ramp_minutes));
                }
            }
        }
        h.finish()
    }

    /// The sensing disturbance active at `minute`, if any (first scheduled
    /// wins when windows overlap).
    pub fn sensor_disturbance_at(&self, minute: u32) -> Option<SensorDisturbance> {
        self.faults
            .iter()
            .filter(|f| f.active_at(minute))
            .find_map(|f| match f.kind {
                FaultKind::SensorStuck { channel } => Some(SensorDisturbance::Stuck(channel)),
                FaultKind::SensorDropout => Some(SensorDisturbance::Dropout),
                FaultKind::SensorBiasDrift { rate_per_minute } => Some(SensorDisturbance::Bias(
                    1.0 + rate_per_minute * f64::from(minute.saturating_sub(f.start_minute) + 1),
                )),
                FaultKind::SensorNoiseBurst { sigma } => Some(SensorDisturbance::Noise(sigma)),
                _ => None,
            })
    }

    /// The combined converter-efficiency factor at `minute` (product of
    /// active derate ramps; `1.0` when none are active).
    pub fn converter_derate_at(&self, minute: u32) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.active_at(minute))
            .filter_map(|f| match f.kind {
                FaultKind::ConverterDerate {
                    factor_start,
                    factor_end,
                } => Some(ramp(
                    factor_start,
                    factor_end,
                    f.start_minute,
                    f.end_minute,
                    minute,
                )),
                _ => None,
            })
            .product()
    }

    /// The deepest actuator-lag queue active at `minute` (`0` = direct
    /// drive).
    pub fn actuator_lag_at(&self, minute: u32) -> u32 {
        self.faults
            .iter()
            .filter(|f| f.active_at(minute))
            .filter_map(|f| match f.kind {
                FaultKind::ActuatorLag { steps } => Some(steps),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The forced ATS position at `minute` during a flap window, if any.
    pub fn ats_override_at(&self, minute: u32) -> Option<AtsOverride> {
        self.faults
            .iter()
            .filter(|f| f.active_at(minute))
            .find_map(|f| match f.kind {
                FaultKind::AtsFlap { period_minutes } => {
                    let elapsed = minute.saturating_sub(f.start_minute);
                    let half = (elapsed / period_minutes.max(1)) % 2;
                    Some(if half == 0 {
                        AtsOverride::ForceUtility
                    } else {
                        AtsOverride::ForceSolar
                    })
                }
                _ => None,
            })
    }

    /// Every core availability constraint active at `minute`.
    pub fn core_constraints_at(&self, minute: u32) -> Vec<CoreConstraint> {
        self.faults
            .iter()
            .filter(|f| f.active_at(minute))
            .filter_map(|f| match f.kind {
                FaultKind::CoreThrottle {
                    core,
                    max_level_index,
                } => Some(CoreConstraint::Throttle {
                    core,
                    max_level_index,
                }),
                FaultKind::CoreLoss { core } => Some(CoreConstraint::Loss { core }),
                _ => None,
            })
            .collect()
    }

    /// `true` when the plan schedules any irradiance transient (so callers
    /// can skip the trace transform entirely otherwise).
    pub fn has_irradiance_faults(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::IrradianceCliff { .. }))
    }

    /// `true` when the plan schedules any core availability fault.
    pub fn has_core_faults(&self) -> bool {
        self.faults.iter().any(|f| {
            matches!(
                f.kind,
                FaultKind::CoreThrottle { .. } | FaultKind::CoreLoss { .. }
            )
        })
    }

    /// `true` when the plan schedules any sensing fault.
    pub fn has_sensor_faults(&self) -> bool {
        self.faults.iter().any(|f| f.kind.is_sensor_fault())
    }

    /// The combined irradiance factor at `minute` (product over active
    /// cliff transients; `1.0` when none are active).
    pub fn irradiance_factor_at(&self, minute: u32) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.active_at(minute))
            .filter_map(|f| match f.kind {
                FaultKind::IrradianceCliff {
                    factor,
                    ramp_minutes,
                } => {
                    let ramp_end = f.start_minute.saturating_add(ramp_minutes);
                    Some(ramp(
                        1.0,
                        factor,
                        f.start_minute,
                        ramp_end,
                        minute.min(ramp_end),
                    ))
                }
                _ => None,
            })
            .product()
    }
}

/// Linear interpolation of a factor across a minute window (constant when
/// the window is a single minute).
fn ramp(from: f64, to: f64, start: u32, end: u32, minute: u32) -> f64 {
    if end <= start || minute <= start {
        return if minute >= end { to } else { from };
    }
    if minute >= end {
        return to;
    }
    let t = f64::from(minute - start) / f64::from(end - start);
    from + (to - from) * t
}

/// Minimal FNV-1a accumulator (same constants as the bench determinism
/// hasher, re-implemented here to keep the crate dependency-free).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
    }

    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cliff(start: u32, end: u32, factor: f64, ramp_minutes: u32) -> ScheduledFault {
        ScheduledFault {
            start_minute: start,
            end_minute: end,
            kind: FaultKind::IrradianceCliff {
                factor,
                ramp_minutes,
            },
        }
    }

    #[test]
    fn empty_plan_is_identity_everywhere() {
        let plan = FaultPlan::empty("noop");
        for m in [0, 450, 720, 1050] {
            assert_eq!(plan.sensor_disturbance_at(m), None);
            assert_eq!(plan.converter_derate_at(m), 1.0);
            assert_eq!(plan.actuator_lag_at(m), 0);
            assert_eq!(plan.ats_override_at(m), None);
            assert!(plan.core_constraints_at(m).is_empty());
            assert_eq!(plan.irradiance_factor_at(m), 1.0);
        }
        assert!(plan.is_empty());
        assert_eq!(plan.first_onset(), None);
        assert!(!plan.has_irradiance_faults());
        assert!(!plan.has_core_faults());
        assert!(!plan.has_sensor_faults());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut plan = FaultPlan::new("bad", 1);
        assert!(plan
            .schedule(ScheduledFault {
                start_minute: 100,
                end_minute: 50,
                kind: FaultKind::SensorDropout,
            })
            .is_err());
        assert!(plan
            .schedule(ScheduledFault {
                start_minute: 0,
                end_minute: 2000,
                kind: FaultKind::SensorDropout,
            })
            .is_err());
        assert!(plan.schedule(cliff(100, 200, 1.5, 0)).is_err());
        assert!(plan
            .schedule(ScheduledFault {
                start_minute: 0,
                end_minute: 10,
                kind: FaultKind::ConverterDerate {
                    factor_start: 0.0,
                    factor_end: 0.9,
                },
            })
            .is_err());
        assert!(plan
            .schedule(ScheduledFault {
                start_minute: 0,
                end_minute: 10,
                kind: FaultKind::AtsFlap { period_minutes: 0 },
            })
            .is_err());
        assert!(plan.is_empty());
    }

    #[test]
    fn windows_are_inclusive() {
        let mut plan = FaultPlan::new("w", 1);
        plan.schedule(ScheduledFault {
            start_minute: 700,
            end_minute: 710,
            kind: FaultKind::SensorDropout,
        })
        .unwrap();
        assert_eq!(plan.sensor_disturbance_at(699), None);
        assert_eq!(
            plan.sensor_disturbance_at(700),
            Some(SensorDisturbance::Dropout)
        );
        assert_eq!(
            plan.sensor_disturbance_at(710),
            Some(SensorDisturbance::Dropout)
        );
        assert_eq!(plan.sensor_disturbance_at(711), None);
        assert_eq!(plan.first_onset(), Some(700));
    }

    #[test]
    fn derate_ramps_linearly() {
        let mut plan = FaultPlan::new("d", 1);
        plan.schedule(ScheduledFault {
            start_minute: 100,
            end_minute: 200,
            kind: FaultKind::ConverterDerate {
                factor_start: 1.0,
                factor_end: 0.5,
            },
        })
        .unwrap();
        assert_eq!(plan.converter_derate_at(99), 1.0);
        assert_eq!(plan.converter_derate_at(100), 1.0);
        assert!((plan.converter_derate_at(150) - 0.75).abs() < 1e-12);
        assert_eq!(plan.converter_derate_at(200), 0.5);
        assert_eq!(plan.converter_derate_at(201), 1.0);
    }

    #[test]
    fn cliff_ramps_then_holds() {
        let mut plan = FaultPlan::new("c", 1);
        plan.schedule(cliff(600, 700, 0.2, 10)).unwrap();
        assert_eq!(plan.irradiance_factor_at(599), 1.0);
        assert_eq!(plan.irradiance_factor_at(600), 1.0);
        assert!((plan.irradiance_factor_at(605) - 0.6).abs() < 1e-12);
        assert_eq!(plan.irradiance_factor_at(610), 0.2);
        assert_eq!(plan.irradiance_factor_at(700), 0.2);
        assert_eq!(plan.irradiance_factor_at(701), 1.0);
        assert!(plan.has_irradiance_faults());
    }

    #[test]
    fn instantaneous_cliff_drops_at_onset() {
        let mut plan = FaultPlan::new("c0", 1);
        plan.schedule(cliff(600, 650, 0.3, 0)).unwrap();
        assert_eq!(plan.irradiance_factor_at(599), 1.0);
        assert_eq!(plan.irradiance_factor_at(600), 0.3);
        assert_eq!(plan.irradiance_factor_at(650), 0.3);
    }

    #[test]
    fn ats_flap_alternates_by_half_period() {
        let mut plan = FaultPlan::new("f", 1);
        plan.schedule(ScheduledFault {
            start_minute: 500,
            end_minute: 520,
            kind: FaultKind::AtsFlap { period_minutes: 5 },
        })
        .unwrap();
        assert_eq!(plan.ats_override_at(499), None);
        assert_eq!(plan.ats_override_at(500), Some(AtsOverride::ForceUtility));
        assert_eq!(plan.ats_override_at(504), Some(AtsOverride::ForceUtility));
        assert_eq!(plan.ats_override_at(505), Some(AtsOverride::ForceSolar));
        assert_eq!(plan.ats_override_at(510), Some(AtsOverride::ForceUtility));
        assert_eq!(plan.ats_override_at(521), None);
    }

    #[test]
    fn core_constraints_collect_all_active() {
        let mut plan = FaultPlan::new("k", 1);
        plan.schedule(ScheduledFault {
            start_minute: 0,
            end_minute: 100,
            kind: FaultKind::CoreLoss { core: 3 },
        })
        .unwrap();
        plan.schedule(ScheduledFault {
            start_minute: 50,
            end_minute: 150,
            kind: FaultKind::CoreThrottle {
                core: 1,
                max_level_index: 4,
            },
        })
        .unwrap();
        assert_eq!(plan.core_constraints_at(10).len(), 1);
        assert_eq!(plan.core_constraints_at(60).len(), 2);
        assert_eq!(plan.core_constraints_at(120).len(), 1);
        assert!(plan.has_core_faults());
    }

    #[test]
    fn bias_drift_grows_with_minutes_since_onset() {
        let mut plan = FaultPlan::new("b", 1);
        plan.schedule(ScheduledFault {
            start_minute: 100,
            end_minute: 200,
            kind: FaultKind::SensorBiasDrift {
                rate_per_minute: 0.1,
            },
        })
        .unwrap();
        let at = |m| match plan.sensor_disturbance_at(m) {
            Some(SensorDisturbance::Bias(x)) => x,
            other => panic!("expected bias at {m}, got {other:?}"),
        };
        assert!((at(100) - 1.1).abs() < 1e-12);
        assert!((at(109) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn digest_distinguishes_plans() {
        let empty = FaultPlan::empty("a");
        let mut one = FaultPlan::new("a", 0);
        one.schedule(ScheduledFault {
            start_minute: 1,
            end_minute: 2,
            kind: FaultKind::SensorDropout,
        })
        .unwrap();
        assert_ne!(empty.digest(), one.digest());
        assert_ne!(
            FaultPlan::empty("a").digest(),
            FaultPlan::empty("b").digest()
        );
        assert_eq!(empty.digest(), FaultPlan::empty("a").digest());
    }
}
