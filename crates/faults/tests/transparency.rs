//! Differential chaos transparency tests.
//!
//! The fault-injection subsystem's core guarantee (DESIGN.md §17): a run
//! with **no armed plan** and a run with an **armed but empty plan** are
//! bit-identical to each other — the seams (sensor wrapper, converter lag
//! queue, availability mask, ATS override, irradiance transform) and the
//! armed detection/degradation machinery must cost exactly nothing when
//! nothing is scheduled. And an armed plan with real faults must be fully
//! deterministic: the same scenario hashes identically across repeated
//! runs, evaluation order, and threads.

use bench::chaos::{load_scenarios, scenarios_dir};
use bench::determinism::{day_hash, shuffle};
use faults::FaultPlan;
use proptest::prelude::*;
use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

/// Canonical day hash for an (optionally armed) Phoenix-AZ simulation.
fn day_hash_for(policy: Policy, season: Season, day: u32, plan: Option<FaultPlan>) -> u64 {
    let mut builder = DaySimulation::builder()
        .site(Site::phoenix_az())
        .season(season)
        .day(day)
        .mix(Mix::hm2())
        .policy(policy);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    day_hash(
        &builder
            .build()
            .expect("valid config")
            .run()
            .expect("day runs"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// An armed-but-empty plan (which also arms detection and the
    /// degradation FSM) yields the bit-identical day hash of a fully
    /// disarmed run, across seasons, realizations, and both MPPT
    /// allocators.
    #[test]
    fn armed_empty_plan_is_bit_transparent(
        season_idx in 0usize..4,
        day in 0u32..2,
        opt in any::<bool>(),
    ) {
        let season = [Season::Jan, Season::Apr, Season::Jul, Season::Oct][season_idx];
        let policy = if opt { Policy::MpptOpt } else { Policy::MpptRr };
        let disarmed = day_hash_for(policy, season, day, None);
        let armed = day_hash_for(policy, season, day, Some(FaultPlan::empty("control")));
        prop_assert_eq!(disarmed, armed, "empty plan perturbed the day");
    }
}

/// Every committed scenario is deterministic under repetition and under
/// a shuffled evaluation order: the per-scenario armed day hash is a pure
/// function of the plan, not of what ran before it.
#[test]
fn armed_scenarios_hash_identically_in_any_order() {
    let scenarios = load_scenarios(&scenarios_dir()).expect("scenarios load");
    assert!(scenarios.len() >= 5);
    let hash_of =
        |plan: &FaultPlan| day_hash_for(Policy::MpptOpt, Season::Jul, 0, Some(plan.clone()));
    let baseline: Vec<u64> = scenarios.iter().map(|s| hash_of(&s.plan)).collect();

    let mut order: Vec<usize> = (0..scenarios.len()).collect();
    shuffle(&mut order, 0xc4a0_5c4a_05c4);
    assert_ne!(
        order,
        (0..scenarios.len()).collect::<Vec<_>>(),
        "shuffle is a no-op"
    );
    for &i in &order {
        assert_eq!(
            hash_of(&scenarios[i].plan),
            baseline[i],
            "scenario {} diverged under shuffled evaluation order",
            scenarios[i].plan.name()
        );
    }
}

/// One armed scenario computed on two concurrent threads matches the
/// main-thread hash bit for bit (the injection RNG and every seam are
/// run-local; nothing leaks through globals or iteration order).
#[test]
fn armed_run_is_thread_independent() {
    let scenarios = load_scenarios(&scenarios_dir()).expect("scenarios load");
    let stuck = scenarios
        .iter()
        .find(|s| s.plan.name() == "stuck_noon")
        .expect("canonical scenario present");
    let here = day_hash_for(Policy::MpptOpt, Season::Jul, 0, Some(stuck.plan.clone()));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let plan = stuck.plan.clone();
            std::thread::spawn(move || day_hash_for(Policy::MpptOpt, Season::Jul, 0, Some(plan)))
        })
        .collect();
    for worker in workers {
        assert_eq!(worker.join().expect("worker ran"), here);
    }
}
